// The hypercover fleet router: a router::Router front-end that shards
// Solve requests across N hypercover_served backends by solve digest
// over a consistent-hash ring, with failover, health probing, and
// fleet-wide Stats aggregation. Clients speak to it exactly as they
// would to a single server.
//
//   ./hypercover_router --backends=unix:/tmp/b0.sock,unix:/tmp/b1.sock
//       [--listen=unix:/tmp/hypercover_router.sock | host:port]
//       [--timeout-ms=30000] [--connect-timeout-ms=2000]
//       [--probe-ms=200] [--probe-max-ms=5000] [--vnodes=64]
//       [--no-forward-shutdown] [--quiet]
//       [--metrics-path=metrics.prom] [--metrics-interval-ms=1000]
//       [--trace-out=trace.json] [--verbose]
//
// Runs until a client sends Shutdown (which, unless
// --no-forward-shutdown, also shuts down every backend — fleet
// shutdown) or the process receives SIGINT/SIGTERM. Final fleet and
// per-backend counters go to stderr.
//
// Observability: --metrics-path periodically rewrites the file with the
// router's hc_router_* Prometheus exposition (also served on the
// Metrics frame), plus one final dump at drain. --trace-out exports the
// recorder's spans at drain as Chrome-trace JSON and turns on
// trace_local. --verbose logs Busy forwards, failovers, and ring
// exhaustion (with solve digest prefix and trace id) to stderr.
//
// Exit code 0 after a clean drain, 1 on startup/usage errors.

#include <atomic>
#include <chrono>
#include <csignal>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace_json.hpp"
#include "router/router.hpp"
#include "util/cli.hpp"

namespace {

using namespace hypercover;

router::Router* g_router = nullptr;

extern "C" void handle_signal(int) {
  if (g_router != nullptr) g_router->request_stop();
}

void dump_metrics(const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (out) out << obs::metrics().prometheus_text();
}

/// Rewrites --metrics-path every interval until stopped, then once more
/// (the drain-final dump the CI smoke test greps).
class MetricsDumper {
 public:
  MetricsDumper(std::string path, std::uint32_t interval_ms)
      : path_(std::move(path)), interval_ms_(interval_ms) {
    if (!path_.empty()) thread_ = std::thread([this] { loop(); });
  }
  ~MetricsDumper() {
    if (!thread_.joinable()) return;
    stop_.store(true, std::memory_order_release);
    thread_.join();
    dump_metrics(path_);
  }

 private:
  void loop() {
    std::uint32_t slept = interval_ms_;  // dump immediately at startup
    while (!stop_.load(std::memory_order_acquire)) {
      if (slept >= interval_ms_) {
        dump_metrics(path_);
        slept = 0;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      slept += 50;
    }
  }

  const std::string path_;
  const std::uint32_t interval_ms_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream in(csv);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

int run(const util::Cli& cli) {
  router::RouterOptions opts;
  opts.listen = cli.get("listen", opts.listen);
  opts.backends = split_csv(cli.get("backends", ""));
  if (opts.backends.empty()) {
    std::cerr << "error: --backends=<addr>[,<addr>...] is required\n";
    return 1;
  }
  constexpr std::int64_t kU32Max = std::numeric_limits<std::uint32_t>::max();
  const std::int64_t timeout = cli.get("timeout-ms", 30000);
  const std::int64_t connect_timeout = cli.get("connect-timeout-ms", 2000);
  const std::int64_t probe = cli.get("probe-ms", 200);
  const std::int64_t probe_max = cli.get("probe-max-ms", 5000);
  const std::int64_t vnodes = cli.get("vnodes", 64);
  const std::int64_t metrics_interval = cli.get("metrics-interval-ms", 1000);
  if (timeout < 0 || timeout > kU32Max || connect_timeout < 0 ||
      connect_timeout > kU32Max || probe < 1 || probe > kU32Max ||
      probe_max < probe || probe_max > kU32Max || vnodes < 1 ||
      vnodes > 4096 || metrics_interval < 50 || metrics_interval > kU32Max) {
    std::cerr << "error: a numeric flag is out of range\n";
    return 1;
  }
  opts.backend_timeout_ms = static_cast<std::uint32_t>(timeout);
  opts.connect_timeout_ms = static_cast<std::uint32_t>(connect_timeout);
  opts.probe_backoff_ms = static_cast<std::uint32_t>(probe);
  opts.probe_backoff_max_ms = static_cast<std::uint32_t>(probe_max);
  opts.vnodes = static_cast<std::uint32_t>(vnodes);
  opts.forward_shutdown = !cli.has("no-forward-shutdown");
  opts.verbose = cli.has("verbose");
  const std::string trace_out = cli.get("trace-out", std::string());
  const std::string metrics_path = cli.get("metrics-path", std::string());
  if (trace_out == "1" || metrics_path == "1") {
    std::cerr << "error: --trace-out/--metrics-path need a file path\n";
    return 1;
  }
  opts.trace_local = !trace_out.empty();

  router::Router rt(opts);
  rt.start();
  g_router = &rt;
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  if (!cli.has("quiet")) {
    std::cerr << "hypercover_router: listening on " << rt.address() << ", "
              << opts.backends.size() << " backends, " << opts.vnodes
              << " vnodes each\n";
  }
  {
    const MetricsDumper dumper(
        metrics_path, static_cast<std::uint32_t>(metrics_interval));
    rt.serve();
  }
  g_router = nullptr;

  if (!trace_out.empty()) {
    const auto spans = obs::recorder().collect_all();
    obs::write_chrome_trace(trace_out, spans);
    if (!cli.has("quiet")) {
      std::cerr << "hypercover_router: " << spans.size()
                << " spans written to " << trace_out << "\n";
    }
  }

  if (!cli.has("quiet")) {
    std::uint64_t solves = 0, failures = 0;
    for (const router::BackendSnapshot& b : rt.backend_snapshots()) {
      solves += b.solves;
      failures += b.failures;
      std::cerr << "hypercover_router: backend " << b.address << ": "
                << b.solves << " solves (" << b.cache_hits << " cache hits), "
                << b.busy << " busy, " << b.failures << " failures, "
                << (b.healthy ? "healthy" : "unhealthy") << " at drain\n";
    }
    std::cerr << "hypercover_router: fleet drained after " << solves
              << " solves, " << rt.retries() << " retries, " << failures
              << " backend failures\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(util::Cli(argc, argv));
  } catch (const std::exception& ex) {
    std::cerr << "error: " << ex.what() << "\n";
    return 1;
  }
}
