// The hypercover fleet router: a router::Router front-end that shards
// Solve requests across N hypercover_served backends by solve digest
// over a consistent-hash ring, with failover, health probing, and
// fleet-wide Stats aggregation. Clients speak to it exactly as they
// would to a single server.
//
//   ./hypercover_router --backends=unix:/tmp/b0.sock,unix:/tmp/b1.sock
//       [--listen=unix:/tmp/hypercover_router.sock | host:port]
//       [--timeout-ms=30000] [--connect-timeout-ms=2000]
//       [--probe-ms=200] [--probe-max-ms=5000] [--vnodes=64]
//       [--no-forward-shutdown] [--quiet]
//
// Runs until a client sends Shutdown (which, unless
// --no-forward-shutdown, also shuts down every backend — fleet
// shutdown) or the process receives SIGINT/SIGTERM. Final fleet and
// per-backend counters go to stderr.
//
// Exit code 0 after a clean drain, 1 on startup/usage errors.

#include <csignal>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "router/router.hpp"
#include "util/cli.hpp"

namespace {

using namespace hypercover;

router::Router* g_router = nullptr;

extern "C" void handle_signal(int) {
  if (g_router != nullptr) g_router->request_stop();
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream in(csv);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

int run(const util::Cli& cli) {
  router::RouterOptions opts;
  opts.listen = cli.get("listen", opts.listen);
  opts.backends = split_csv(cli.get("backends", ""));
  if (opts.backends.empty()) {
    std::cerr << "error: --backends=<addr>[,<addr>...] is required\n";
    return 1;
  }
  constexpr std::int64_t kU32Max = std::numeric_limits<std::uint32_t>::max();
  const std::int64_t timeout = cli.get("timeout-ms", 30000);
  const std::int64_t connect_timeout = cli.get("connect-timeout-ms", 2000);
  const std::int64_t probe = cli.get("probe-ms", 200);
  const std::int64_t probe_max = cli.get("probe-max-ms", 5000);
  const std::int64_t vnodes = cli.get("vnodes", 64);
  if (timeout < 0 || timeout > kU32Max || connect_timeout < 0 ||
      connect_timeout > kU32Max || probe < 1 || probe > kU32Max ||
      probe_max < probe || probe_max > kU32Max || vnodes < 1 ||
      vnodes > 4096) {
    std::cerr << "error: a numeric flag is out of range\n";
    return 1;
  }
  opts.backend_timeout_ms = static_cast<std::uint32_t>(timeout);
  opts.connect_timeout_ms = static_cast<std::uint32_t>(connect_timeout);
  opts.probe_backoff_ms = static_cast<std::uint32_t>(probe);
  opts.probe_backoff_max_ms = static_cast<std::uint32_t>(probe_max);
  opts.vnodes = static_cast<std::uint32_t>(vnodes);
  opts.forward_shutdown = !cli.has("no-forward-shutdown");

  router::Router rt(opts);
  rt.start();
  g_router = &rt;
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  if (!cli.has("quiet")) {
    std::cerr << "hypercover_router: listening on " << rt.address() << ", "
              << opts.backends.size() << " backends, " << opts.vnodes
              << " vnodes each\n";
  }
  rt.serve();
  g_router = nullptr;

  if (!cli.has("quiet")) {
    std::uint64_t solves = 0, failures = 0;
    for (const router::BackendSnapshot& b : rt.backend_snapshots()) {
      solves += b.solves;
      failures += b.failures;
      std::cerr << "hypercover_router: backend " << b.address << ": "
                << b.solves << " solves (" << b.cache_hits << " cache hits), "
                << b.busy << " busy, " << b.failures << " failures, "
                << (b.healthy ? "healthy" : "unhealthy") << " at drain\n";
    }
    std::cerr << "hypercover_router: fleet drained after " << solves
              << " solves, " << rt.retries() << " retries, " << failures
              << " backend failures\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(util::Cli(argc, argv));
  } catch (const std::exception& ex) {
    std::cerr << "error: " << ex.what() << "\n";
    return 1;
  }
}
