// Command-line solver: read a hypergraph (file or stdin, format of
// hypergraph/io.hpp), run any algorithm from the solver registry, print
// the cover and its certificate, optionally machine-readably.
//
//   ./hypercover_cli --input=instance.hg [--algo=<name>] [--list-algos]
//       [--eps=0.5] [--appendix-c] [--alpha=<fixed>] [--threads=1]
//       [--dense] [--layout=epoch|legacy] [--f-approx] [--max-rounds=N]
//       [--quiet] [--cover-only] [--stats-json[=path]] [--binary]
//   ./hypercover_cli --input=instance.hg --convert=instance.hgb
//   ./hypercover_cli --batch=manifest.txt [--threads=N] [--algo=<default>]
//       [--batch-policy=rr|live] [--batch-quantum=32] [common knobs]
//   ./hypercover_cli --connect=<unix:/path | host:port> [solve flags]
//       [--binary] [--shutdown] [--server-stats] [--server-metrics]
//       [--timeout-ms=N] [--trace-out=trace.json]
//       [--busy-retries=4] [--busy-base-ms=10] [--busy-max-ms=2000]
//
// --convert=<out.hgb> writes the instance in the `hgb` binary format
// (hypergraph/binary.hpp) and exits — the offline converter for the
// zero-copy serving path. --binary declares the --input to be an .hgb
// file: local solves mmap and adopt it without parsing; --connect solves
// ship it with SubmitGraphBinary (by-path when the input is a real file,
// so a server sharing the filesystem mmaps it zero-copy; inline bytes
// from stdin). Without --binary the input is sniffed: a file that starts
// with the hgb magic is loaded as binary anyway.
//
// --connect=<addr> routes an ordinary single solve through a running
// hypercover_served daemon instead of solving in-process: the instance
// text is sent over the socket, the server dispatches it on its shared
// scheduler (or answers from its digest-keyed result cache), and the
// returned cover and duals are RE-VERIFIED LOCALLY against the instance
// — the exit codes keep their meaning without trusting the server.
// --shutdown asks the daemon to drain and exit; --server-stats prints
// its serving counters. A Busy answer (admission control rejected the
// request) is retried with bounded, seed-jittered exponential backoff
// (--busy-retries, default 4; --busy-base-ms / --busy-max-ms bound the
// delay; --busy-retries=0 fails fast); exit code 3 only once the
// retries are exhausted. --timeout-ms=N (opt-in, default 0 = wait
// forever) bounds both connect and each server reply — a stalled or
// unreachable server fails the run with exit 1 instead of hanging.
//
// --trace-out=<path> (a --connect flag) traces the solve end to end:
// the client mints a trace id, the context rides the Solve frame, and
// every layer's spans — client.solve, router.route / router.attempt,
// server.admit / server.queue_wait, batch.slice, sampled engine.round —
// come back on the Result and are written as one Chrome-trace JSON,
// loadable in Perfetto / chrome://tracing (scripts/trace_check.py
// validates it). --server-metrics prints the server's Prometheus text
// exposition and exits. Both need a protocol-v4 server; tracing is pure
// observation — the Solution bytes are bit-identical either way.
//
// --list-algos prints one `name<TAB>kind<TAB>description` line per
// registered algorithm (the valid --algo values) and exits. Dispatch is
// entirely registry-driven: a newly registered algorithm is available
// here with no CLI change.
//
// --batch=<manifest> solves a file of instances concurrently on one
// shared worker pool (api::BatchScheduler). Each manifest line names an
// instance file plus an optional per-line algorithm ('#' starts a
// comment — whole-line or trailing — and blank lines are skipped;
// --stats-json / --cover-only are single-solve flags and are rejected):
//     instances/web.hg
//     instances/sensor.hg kmw
// All common knobs (--eps, --threads as the pool size, --max-rounds, ...)
// apply to every job; every returned Solution is bit-identical to solving
// that instance alone. One summary line per job goes to stdout
// (file, algo, n, m, rounds, outcome, cover weight, certified ratio),
// then a throughput total to stderr. Exit 2 if any job fails verification.
//
// --threads=N steps agents on N workers (0 = one per hardware thread);
// the run is bit-identical at any value. --dense forces the reference
// dense engine schedule (for A/B comparisons; also bit-identical).
// --layout=legacy selects the pre-arena byte-presence mailbox layout
// (the perf A/B baseline; epoch is the default — also bit-identical).
// --stats-json dumps a machine-readable record (algorithm, RunStats,
// transcript hash, engine work counters, verification certificate, wall
// time) to stdout, or to a file when given a path — the scripted
// perf-tracking hook (scripts/bench_json.py --solve-json folds it into
// the perf trajectory).
//
// Exit code 0 on success (cover verified), 2 on verification failure,
// 1 on usage/input errors. The stats record is emitted even when
// verification fails (e.g. a --max-rounds-truncated run) so partial runs
// can be tracked; its certificate object reports the failure.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <span>
#include <sstream>
#include <vector>

#include "api/batch.hpp"
#include "api/registry.hpp"
#include "congest/thread_pool.hpp"
#include "core/mwhvc.hpp"
#include "hypergraph/binary.hpp"
#include "hypergraph/io.hpp"
#include "hypergraph/stats.hpp"
#include "obs/trace_json.hpp"
#include "server/client.hpp"
#include "util/cli.hpp"
#include "util/digest.hpp"
#include "verify/verify.hpp"

namespace {

using namespace hypercover;

/// JSON has no infinity literal; certified_ratio is +inf when a valid
/// cover comes with an empty dual packing (greedy). Emit null there.
std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  std::ostringstream os;
  os << value;
  return os.str();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

/// Serving provenance of one solve record: local in-process, or served
/// over a --connect socket (cold vs result-cache hit).
enum class Served { kLocal, kCold, kCacheHit };

/// Renders the solve record as a single JSON object. The transcript hash
/// and solve digest are emitted as hex strings: JSON numbers lose 64-bit
/// integer precision. `solve_digest` is util::solve_digest — the same
/// key the server cache uses.
std::string stats_json(const api::Solution& sol, std::uint32_t threads,
                       bool dense, bool legacy_layout, std::size_t cover_size,
                       std::uint64_t solve_digest, Served served,
                       std::uint32_t busy_retries,
                       std::uint64_t busy_backoff_ms) {
  const congest::RunStats& net = sol.net;
  const verify::Certificate& cert = sol.certificate;
  std::ostringstream os;
  os << "{\n";
  os << "  \"algo\": \"" << json_escape(sol.algorithm) << "\",\n";
  os << "  \"threads\": " << threads << ",\n";
  os << "  \"scheduling\": \"" << (dense ? "dense" : "active") << "\",\n";
  os << "  \"layout\": \"" << (legacy_layout ? "legacy" : "epoch") << "\",\n";
  os << "  \"rounds\": " << net.rounds << ",\n";
  os << "  \"completed\": " << (net.completed ? "true" : "false") << ",\n";
  os << "  \"total_messages\": " << net.total_messages << ",\n";
  os << "  \"total_bits\": " << net.total_bits << ",\n";
  os << "  \"max_message_bits\": " << net.max_message_bits << ",\n";
  os << "  \"bandwidth_limit_bits\": " << net.bandwidth_limit_bits << ",\n";
  os << "  \"bandwidth_violations\": " << net.bandwidth_violations << ",\n";
  os << "  \"transcript_hash\": \"0x" << std::hex << net.transcript_hash
     << std::dec << "\",\n";
  os << "  \"solve_digest\": \"0x" << std::hex << solve_digest << std::dec
     << "\",\n";
  os << "  \"served\": " << (served == Served::kLocal ? "false" : "true")
     << ",\n";
  if (served != Served::kLocal) {
    os << "  \"cache_hit\": " << (served == Served::kCacheHit ? "true" : "false")
       << ",\n";
    os << "  \"busy_retries\": " << busy_retries << ",\n";
    os << "  \"busy_backoff_ms\": " << busy_backoff_ms << ",\n";
  }
  os << "  \"agents_visited\": " << net.agents_visited << ",\n";
  os << "  \"agent_steps\": " << net.agent_steps << ",\n";
  os << "  \"slots_processed\": " << net.slots_processed << ",\n";
  os << "  \"sparse_account_passes\": " << net.sparse_account_passes << ",\n";
  os << "  \"dense_account_passes\": " << net.dense_account_passes << ",\n";
  os << "  \"clear_slots\": " << net.clear_slots << ",\n";
  os << "  \"sparse_clear_passes\": " << net.sparse_clear_passes << ",\n";
  os << "  \"dense_clear_passes\": " << net.dense_clear_passes << ",\n";
  os << "  \"epoch_clear_passes\": " << net.epoch_clear_passes << ",\n";
  os << "  \"step_cycles\": " << net.step_cycles << ",\n";
  os << "  \"cycles_per_agent_step\": "
     << json_number(net.agent_steps > 0
                        ? static_cast<double>(net.step_cycles) /
                              static_cast<double>(net.agent_steps)
                        : 0.0)
     << ",\n";
  os << "  \"cover_weight\": " << cert.cover_weight << ",\n";
  os << "  \"cover_size\": " << cover_size << ",\n";
  os << "  \"dual_total\": " << cert.dual_total << ",\n";
  os << "  \"certified_ratio\": " << json_number(cert.certified_ratio)
     << ",\n";
  os << "  \"certificate\": {\n";
  os << "    \"valid\": " << (cert.valid() ? "true" : "false") << ",\n";
  os << "    \"cover_valid\": " << (cert.cover_valid ? "true" : "false")
     << ",\n";
  os << "    \"packing_feasible\": "
     << (cert.packing_feasible ? "true" : "false") << ",\n";
  os << "    \"error\": \"" << json_escape(cert.error) << "\"\n";
  os << "  },\n";
  os << "  \"wall_ms\": " << sol.wall_ms << "\n";
  os << "}\n";
  return os.str();
}

/// Solver knobs shared by the single-solve and --batch modes.
struct CommonKnobs {
  api::SolveRequest req;
  std::uint32_t threads = 1;
  bool dense = false;
  bool legacy_layout = false;
};

/// Parses the shared flags into `k`; returns a nonzero exit code (after
/// printing the error) on bad values, 0 otherwise.
int parse_knobs(const util::Cli& cli, CommonKnobs& k) {
  constexpr std::int64_t kU32Max = std::numeric_limits<std::uint32_t>::max();
  const std::int64_t threads_arg = cli.get("threads", 1);
  if (threads_arg < 0 || threads_arg > kU32Max) {
    std::cerr << "error: --threads must be in [0, " << kU32Max << "]\n";
    return 1;
  }
  k.threads = static_cast<std::uint32_t>(threads_arg);
  k.dense = cli.has("dense");
  k.req.eps = cli.get("eps", 0.5);
  k.req.f_approx = cli.has("f-approx");
  k.req.engine.threads = k.threads;
  k.req.engine.scheduling =
      k.dense ? congest::Scheduling::kDense : congest::Scheduling::kActive;
  const std::string layout = cli.get("layout", std::string("epoch"));
  if (layout == "legacy") {
    k.legacy_layout = true;
    k.req.engine.layout = congest::MailboxLayout::kLegacyBytes;
  } else if (layout != "epoch" && layout != "1") {
    std::cerr << "error: --layout must be epoch or legacy\n";
    return 1;
  }
  if (cli.has("max-rounds")) {
    const std::int64_t max_rounds =
        cli.get("max-rounds", std::int64_t{1} << 20);
    if (max_rounds <= 0 || max_rounds > kU32Max) {
      std::cerr << "error: --max-rounds must be in [1, " << kU32Max << "]\n";
      return 1;
    }
    k.req.engine.max_rounds = static_cast<std::uint32_t>(max_rounds);
  }
  k.req.mwhvc.appendix_c = cli.has("appendix-c");
  if (cli.has("alpha")) {
    k.req.mwhvc.alpha_mode = core::AlphaMode::kFixed;
    k.req.mwhvc.alpha_fixed = cli.get("alpha", 2.0);
  }
  return 0;
}

/// Prints / records one solved instance — certificate gate, --stats-json,
/// --cover-only, and the human-readable block — exactly as the local
/// path always has. Shared by the in-process and --connect modes; the
/// certificate on `sol` must already be the LOCALLY recomputed one, so
/// the exit-code contract (2 on verification failure) holds without
/// trusting any server.
int emit_solution(const util::Cli& cli, const hg::Hypergraph& g,
                  const api::Solution& sol, const CommonKnobs& knobs,
                  std::uint64_t solve_digest, Served served,
                  std::uint32_t busy_retries = 0,
                  std::uint64_t busy_backoff_ms = 0) {
  const bool quiet = cli.has("quiet");
  const verify::Certificate& cert = sol.certificate;
  std::size_t cover_size = 0;
  for (const bool b : sol.in_cover) cover_size += b;
  // The stats record is written even for a failed/partial run (the
  // certificate object in it says so); the exit code still reports the
  // verification failure below.
  bool json_on_stdout = false;
  if (cli.has("stats-json")) {
    const std::string json =
        stats_json(sol, knobs.threads, knobs.dense, knobs.legacy_layout,
                   cover_size, solve_digest, served, busy_retries,
                   busy_backoff_ms);
    const std::string out_path = cli.get("stats-json", std::string("-"));
    // A bare --stats-json (no =path) parses as "1": dump to stdout, and
    // suppress the human-readable block below so stdout stays parseable
    // (--cover-only still appends its vertex list).
    if (out_path == "-" || out_path == "1" || out_path.empty()) {
      std::cout << json;
      json_on_stdout = true;
    } else {
      std::ofstream out(out_path);
      if (!out) {
        std::cerr << "error: cannot write " << out_path << "\n";
        return 1;
      }
      out << json;
      if (!quiet) std::cerr << "stats written to " << out_path << "\n";
    }
  }
  if (!cert.cover_valid) {
    std::cerr << "VERIFICATION FAILED: " << cert.error << "\n";
    return 2;
  }
  if (cli.has("cover-only")) {
    for (hg::VertexId v = 0; v < g.num_vertices(); ++v) {
      if (sol.in_cover[v]) std::cout << v << "\n";
    }
    return 0;
  }
  if (json_on_stdout) return 0;
  std::cout << "algorithm: " << sol.algorithm << "\n";
  std::cout << "cover_weight: " << cert.cover_weight << "\n";
  std::cout << "cover_size: " << cover_size << "\n";
  if (cert.dual_total > 0) {
    std::cout << "dual_lower_bound: " << cert.dual_total << "\n";
    std::cout << "certified_ratio: " << cert.certified_ratio << "\n";
  }
  if (sol.net.rounds > 0) std::cout << "rounds: " << sol.net.rounds << "\n";
  std::cout << "cover:";
  for (hg::VertexId v = 0; v < g.num_vertices(); ++v) {
    if (sol.in_cover[v]) std::cout << ' ' << v;
  }
  std::cout << "\n";
  return 0;
}

/// Reads the whole --input source (file or stdin) as raw text — the
/// bytes a --connect solve ships to the server verbatim.
int read_input_text(const util::Cli& cli, std::string& text) {
  const std::string path = cli.get("input", std::string("-"));
  std::ostringstream buf;
  if (path == "-") {
    buf << std::cin.rdbuf();
  } else {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "error: cannot open " << path << "\n";
      return 1;
    }
    buf << in.rdbuf();
  }
  text = std::move(buf).str();
  return 0;
}

/// Does the file at `path` start with the hgb magic? (Missing/short
/// files sniff as "no" — the real open reports the error properly.)
bool file_is_hgb(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::uint8_t head[8] = {};
  in.read(reinterpret_cast<char*>(head), sizeof head);
  return in.gcount() == sizeof head && hg::looks_like_binary(head);
}

/// --connect mode: route the solve through a hypercover_served daemon,
/// then re-verify the returned cover and duals locally.
int run_connect(const util::Cli& cli, const CommonKnobs& knobs) {
  const std::string address = cli.get("connect", std::string());
  const bool quiet = cli.has("quiet");
  constexpr std::int64_t kU32Max = std::numeric_limits<std::uint32_t>::max();
  const std::int64_t timeout_ms = cli.get("timeout-ms", 0);
  const std::int64_t busy_retries = cli.get("busy-retries", 4);
  const std::int64_t busy_base_ms = cli.get("busy-base-ms", 10);
  const std::int64_t busy_max_ms = cli.get("busy-max-ms", 2000);
  if (timeout_ms < 0 || timeout_ms > kU32Max || busy_retries < 0 ||
      busy_retries > kU32Max || busy_base_ms < 1 || busy_base_ms > kU32Max ||
      busy_max_ms < busy_base_ms || busy_max_ms > kU32Max) {
    std::cerr << "error: --timeout-ms/--busy-* flags are out of range\n";
    return 1;
  }
  server::Client client;
  client.connect(address, static_cast<std::uint32_t>(timeout_ms));
  server::BusyRetryPolicy busy_policy;
  busy_policy.max_retries = static_cast<std::uint32_t>(busy_retries);
  busy_policy.base_delay_ms = static_cast<std::uint32_t>(busy_base_ms);
  busy_policy.max_delay_ms = static_cast<std::uint32_t>(busy_max_ms);
  client.set_busy_retry(busy_policy);

  if (cli.has("shutdown")) {
    client.shutdown_server();
    if (!quiet) std::cerr << "server at " << address << " shut down\n";
    return 0;
  }
  if (cli.has("server-metrics")) {
    std::cout << client.metrics_text();
    return 0;
  }
  if (cli.has("server-stats")) {
    const server::ServerStats s = client.stats();
    std::cout << "connections: " << s.connections << "\n"
              << "requests: " << s.requests << "\n"
              << "solves: " << s.solves << "\n"
              << "cache_hits: " << s.cache_hits << "\n"
              << "cache_misses: " << s.cache_misses << "\n"
              << "cache_evictions: " << s.cache_evictions << "\n"
              << "cache_entries: " << s.cache_entries << "\n"
              << "busy_rejections: " << s.busy_rejections << "\n"
              << "protocol_errors: " << s.protocol_errors << "\n"
              << "in_flight: " << s.in_flight << "\n"
              << "queued_bytes: " << s.queued_bytes << "\n"
              << "pool_threads: " << s.pool_threads << "\n"
              << "max_inflight: " << s.max_inflight << "\n"
              << "engine_rounds: " << s.engine_rounds << "\n"
              << "engine_agent_steps: " << s.engine_agent_steps << "\n"
              << "engine_step_cycles: " << s.engine_step_cycles << "\n"
              << "engine_slots_processed: " << s.engine_slots_processed << "\n"
              << "engine_clear_slots: " << s.engine_clear_slots << "\n"
              << "engine_sparse_clear_passes: " << s.engine_sparse_clear_passes
              << "\n"
              << "engine_dense_clear_passes: " << s.engine_dense_clear_passes
              << "\n"
              << "engine_epoch_clear_passes: " << s.engine_epoch_clear_passes
              << "\n";
    return 0;
  }

  const std::string algo = cli.get("algo", std::string("mwhvc"));
  const std::string input = cli.get("input", std::string("-"));
  std::string raw;  // instance bytes as read: text, or an hgb image
  if (const int rc = read_input_text(cli, raw); rc != 0) return rc;
  const std::span<const std::uint8_t> raw_bytes(
      reinterpret_cast<const std::uint8_t*>(raw.data()), raw.size());
  const bool binary = cli.has("binary") || hg::looks_like_binary(raw_bytes);
  // Local copy for re-verification, whatever the wire form.
  const hg::Hypergraph g =
      binary ? hg::read_binary(raw_bytes) : hg::from_text(raw);
  if (!quiet) std::cerr << "instance: " << hg::compute_stats(g) << "\n";
  if (cli.has("threads") || knobs.dense || knobs.legacy_layout) {
    std::cerr << "note: --threads/--dense/--layout are local-engine knobs; "
                 "the server's own pool configuration applies\n";
  }

  server::SolveKnobs wire_knobs;
  wire_knobs.eps = knobs.req.eps;
  wire_knobs.f_approx = knobs.req.f_approx;
  if (cli.has("max-rounds")) wire_knobs.max_rounds = knobs.req.engine.max_rounds;
  wire_knobs.appendix_c = knobs.req.mwhvc.appendix_c;
  if (knobs.req.mwhvc.alpha_mode == core::AlphaMode::kFixed) {
    wire_knobs.use_alpha_fixed = true;
    wire_knobs.alpha_fixed = knobs.req.mwhvc.alpha_fixed;
  }

  const std::string trace_out = cli.get("trace-out", std::string());
  if (!trace_out.empty() && trace_out != "1") {
    if (client.version() < server::kProtocolVersion) {
      std::cerr << "error: --trace-out needs a protocol-v4 server (peer "
                   "negotiated v"
                << client.version() << ")\n";
      return 1;
    }
    client.set_tracing(true);
  }

  server::GraphInfo ginfo;
  server::WireResult wire;
  try {
    // Busy can answer either frame: Solve on the in-flight limits, and
    // a submit when the instance alone exceeds the byte budget.
    if (binary && input != "-") {
      // By-path: a server sharing the filesystem mmaps and adopts the
      // .hgb in place — the instance bytes never cross the socket.
      ginfo = client.submit_graph_binary_path(
          std::filesystem::absolute(input).string());
    } else if (binary) {
      ginfo = client.submit_graph_binary(raw_bytes);
    } else {
      ginfo = client.submit_graph_text(raw);
    }
    wire = client.solve(algo, wire_knobs);
  } catch (const server::BusyError& busy) {
    std::cerr << "error: " << busy.what();
    if (busy_policy.max_retries > 0) {
      std::cerr << " (after " << busy_policy.max_retries << " retries)";
    }
    std::cerr << "\n";
    return 3;
  }

  // The GraphOk digest is the server's view of the instance it will key
  // every solve against; it must equal our own hash of our own parse.
  const std::uint64_t local_graph_digest = util::graph_digest(g);
  if (ginfo.digest != local_graph_digest) {
    std::cerr << "warning: server graph digest 0x" << std::hex << ginfo.digest
              << " != local 0x" << local_graph_digest << std::dec << "\n";
  } else if (!quiet) {
    std::cerr << "graph digest cross-check: 0x" << std::hex
              << local_graph_digest << std::dec << " ok\n";
  }

  api::Solution sol;
  sol.algorithm = wire.algorithm;
  sol.in_cover = std::move(wire.in_cover);
  sol.duals = std::move(wire.duals);
  sol.cover_weight = wire.cover_weight;
  sol.dual_total = wire.dual_total;
  sol.iterations = wire.iterations;
  sol.net.rounds = wire.rounds;
  sol.net.completed = wire.completed;
  sol.net.total_messages = wire.total_messages;
  sol.net.total_bits = wire.total_bits;
  sol.net.transcript_hash = wire.transcript_hash;
  sol.outcome = static_cast<api::RunOutcome>(wire.outcome);
  sol.wall_ms = wire.wall_ms;
  // Never trust the server's certificate bits: re-check the cover and
  // packing against our own parse of the instance.
  sol.certificate = verify::certify(g, sol.in_cover, sol.duals);

  // The server keys its cache with the same util::solve_digest; a
  // mismatch means the two sides disagree about what was solved.
  const std::uint64_t local_digest =
      util::solve_digest(g, algo, server::to_request(wire_knobs));
  if (local_digest != wire.solve_digest) {
    std::cerr << "warning: server solve digest 0x" << std::hex
              << wire.solve_digest << " != local 0x" << local_digest
              << std::dec << "\n";
  }
  if (!quiet) {
    std::cerr << "served by " << address << ": "
              << (wire.cache_hit ? "cache hit" : "cold solve") << ", server "
              << (wire.cert_valid ? "certified" : "UNCERTIFIED") << "\n";
    if (wire.busy_retries > 0) {
      std::cerr << "busy backoff: " << wire.busy_retries << " retries, "
                << wire.busy_backoff_ms << " ms slept\n";
    }
    if (sol.net.rounds > 0) std::cerr << "network: " << sol.net << "\n";
  }
  if (!trace_out.empty() && trace_out != "1") {
    obs::write_chrome_trace(trace_out, wire.spans);
    if (!quiet) {
      std::cerr << "trace: " << wire.spans.size() << " spans written to "
                << trace_out << "\n";
    }
  }
  return emit_solution(cli, g, sol, knobs, wire.solve_digest,
                       wire.cache_hit ? Served::kCacheHit : Served::kCold,
                       wire.busy_retries, wire.busy_backoff_ms);
}

const char* outcome_name(api::RunOutcome outcome) {
  switch (outcome) {
    case api::RunOutcome::kCompleted: return "completed";
    case api::RunOutcome::kRoundLimit: return "round-limit";
    case api::RunOutcome::kBudgetExhausted: return "budget";
    case api::RunOutcome::kCancelled: return "cancelled";
  }
  return "?";
}

/// --batch mode: parse the manifest, load every instance, solve them all
/// concurrently on one BatchScheduler pool, and summarize.
int run_batch(const util::Cli& cli, const CommonKnobs& knobs) {
  // Per-solve output flags have no one-job meaning here; reject them
  // loudly instead of letting a scripted caller read silence as success.
  for (const char* unsupported : {"stats-json", "cover-only"}) {
    if (cli.has(unsupported)) {
      std::cerr << "error: --" << unsupported
                << " is not supported in --batch mode (one summary line "
                   "per job goes to stdout instead)\n";
      return 1;
    }
  }
  const std::string manifest_path = cli.get("batch", std::string());
  std::ifstream manifest(manifest_path);
  if (!manifest) {
    std::cerr << "error: cannot open manifest " << manifest_path << "\n";
    return 1;
  }
  const std::string default_algo = cli.get("algo", std::string("mwhvc"));

  struct ManifestEntry {
    std::string path, algo;
  };
  std::vector<ManifestEntry> entries;
  std::string line;
  while (std::getline(manifest, line)) {
    std::istringstream ls(line);
    ManifestEntry entry;
    if (!(ls >> entry.path) || entry.path[0] == '#') continue;
    // A '#' token ends the line (trailing comments are allowed anywhere).
    if (!(ls >> entry.algo) || entry.algo[0] == '#') entry.algo = default_algo;
    entries.push_back(std::move(entry));
  }
  if (entries.empty()) {
    std::cerr << "error: manifest " << manifest_path
              << " lists no instances\n";
    return 1;
  }

  std::vector<hg::Hypergraph> graphs(entries.size());
  std::vector<api::BatchJob> jobs(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (api::find_solver(entries[i].algo) == nullptr) {
      std::cerr << "error: unknown algorithm " << entries[i].algo
                << " in manifest line for " << entries[i].path << "\n";
      return 1;
    }
    std::ifstream in(entries[i].path);
    if (!in) {
      std::cerr << "error: cannot open " << entries[i].path << "\n";
      return 1;
    }
    graphs[i] = hg::read_text(in);
    jobs[i].graph = &graphs[i];
    jobs[i].algorithm = entries[i].algo;
    jobs[i].request = knobs.req;
  }

  api::BatchOptions opts;
  opts.threads = knobs.threads;
  const std::string policy = cli.get("batch-policy", std::string("rr"));
  if (policy == "live") {
    opts.policy = api::BatchPolicy::kFewestLiveAgents;
  } else if (policy != "rr") {
    std::cerr << "error: --batch-policy must be rr or live\n";
    return 1;
  }
  const std::int64_t quantum = cli.get("batch-quantum", 32);
  if (quantum < 1 || quantum > std::numeric_limits<std::uint32_t>::max()) {
    std::cerr << "error: --batch-quantum must be >= 1\n";
    return 1;
  }
  opts.round_quantum = static_cast<std::uint32_t>(quantum);

  const auto wall_start = std::chrono::steady_clock::now();
  api::BatchScheduler scheduler(opts);
  const std::vector<api::Solution> results = scheduler.solve_all(jobs);
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - wall_start)
                             .count();

  bool all_valid = true;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const api::Solution& sol = results[i];
    const hg::Hypergraph& g = graphs[i];
    all_valid = all_valid && sol.certificate.valid();
    std::cout << entries[i].path << '\t' << sol.algorithm << '\t'
              << g.num_vertices() << '\t' << g.num_edges() << '\t'
              << sol.net.rounds << '\t' << outcome_name(sol.outcome) << '\t'
              << sol.certificate.cover_weight << '\t'
              << json_number(sol.certificate.certified_ratio) << '\t'
              << (sol.certificate.valid() ? "ok" : "INVALID") << '\n';
  }
  if (!cli.has("quiet")) {
    std::cerr << "batch: " << results.size() << " jobs on "
              << scheduler.pool().size() << " workers in " << wall_ms
              << " ms (" << (1000.0 * static_cast<double>(results.size()) /
                             std::max(wall_ms, 1e-9))
              << " jobs/s)\n";
  }
  return all_valid ? 0 : 2;
}

int run(const util::Cli& cli) {
  if (cli.has("list-algos")) {
    for (const api::Solver& s : api::solvers()) {
      std::cout << s.name << "\t"
                << (s.steppable ? "distributed" : "sequential") << "\t"
                << s.description << "\n";
    }
    return 0;
  }

  CommonKnobs knobs;
  if (const int rc = parse_knobs(cli, knobs); rc != 0) return rc;
  if (cli.has("connect")) {
    if (cli.has("batch")) {
      std::cerr << "error: --batch is not supported with --connect (issue "
                   "one request per instance instead)\n";
      return 1;
    }
    return run_connect(cli, knobs);
  }
  if (cli.has("batch")) return run_batch(cli, knobs);

  const bool quiet = cli.has("quiet");
  hg::Hypergraph g;
  const std::string path = cli.get("input", std::string("-"));
  if (path == "-") {
    if (cli.has("binary")) {
      std::ostringstream buf;
      buf << std::cin.rdbuf();
      const std::string bytes = std::move(buf).str();
      g = hg::read_binary(
          {reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size()});
    } else {
      g = hg::read_text(std::cin);
    }
  } else if (cli.has("binary") || file_is_hgb(path)) {
    // The zero-copy local path: mmap + validate + adopt, no parsing.
    g = hg::map_file(path);
  } else {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "error: cannot open " << path << "\n";
      return 1;
    }
    g = hg::read_text(in);
  }

  if (cli.has("convert")) {
    const std::string out = cli.get("convert", std::string());
    if (out.empty() || out == "1") {
      std::cerr << "error: --convert needs an output path "
                   "(--convert=instance.hgb)\n";
      return 1;
    }
    hg::write_binary_file(out, g);
    if (!quiet) {
      std::cerr << "wrote " << out << ": n=" << g.num_vertices()
                << " m=" << g.num_edges() << " digest=0x" << std::hex
                << util::graph_digest(g) << std::dec << "\n";
    }
    return 0;
  }

  const std::string algo = cli.get("algo", std::string("mwhvc"));
  const api::Solver* solver = api::find_solver(algo);
  if (solver == nullptr) {
    std::cerr << "error: unknown --algo=" << algo << " (--list-algos prints"
              << " the registered names)\n";
    return 1;
  }
  if (!quiet) std::cerr << "instance: " << hg::compute_stats(g) << "\n";

  const std::uint32_t threads = knobs.threads;
  const bool dense = knobs.dense;
  if (!solver->steppable && cli.has("threads") && threads != 1) {
    std::cerr << "note: --threads ignored by the sequential " << algo
              << " solver\n";
  }

  const api::Solution sol = api::solve(algo, g, knobs.req);
  if (!quiet && solver->steppable) {
    std::cerr << "network: " << sol.net << "\n";
  }
  return emit_solution(cli, g, sol, knobs,
                       util::solve_digest(g, algo, knobs.req), Served::kLocal);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(util::Cli(argc, argv));
  } catch (const std::exception& ex) {
    std::cerr << "error: " << ex.what() << "\n";
    return 1;
  }
}
