// Command-line solver: read a hypergraph (file or stdin, format of
// hypergraph/io.hpp), run a chosen algorithm, print the cover and its
// certificate, optionally machine-readably.
//
//   ./hypercover_cli --input=instance.hg [--algo=mwhvc|kmw|kvy|greedy|
//       local-ratio] [--eps=0.5] [--appendix-c] [--alpha=<fixed>]
//       [--threads=1] [--dense] [--f-approx] [--quiet] [--cover-only]
//       [--stats-json[=path]]
//
// --threads=N steps agents on N workers (0 = one per hardware thread);
// the run is bit-identical at any value. --dense forces the reference
// dense engine schedule (for A/B comparisons; also bit-identical).
// --stats-json dumps a machine-readable RunStats record (rounds, bits,
// messages, transcript hash, engine work counters, wall time) to stdout,
// or to a file when given a path — the scripted perf-tracking hook.
//
// Exit code 0 on success (cover verified), 2 on verification failure,
// 1 on usage/input errors.

#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>

#include "baselines/kmw.hpp"
#include "baselines/kvy.hpp"
#include "baselines/sequential.hpp"
#include "core/mwhvc.hpp"
#include "hypergraph/io.hpp"
#include "hypergraph/stats.hpp"
#include "util/cli.hpp"
#include "verify/verify.hpp"

namespace {

using namespace hypercover;

/// Renders the run record as a single JSON object. The transcript hash is
/// emitted as a hex string: JSON numbers lose 64-bit integer precision.
std::string stats_json(const std::string& algo, const congest::RunStats& net,
                       std::uint32_t threads, bool dense, double wall_ms,
                       const verify::Certificate& cert,
                       std::size_t cover_size) {
  std::ostringstream os;
  os << "{\n";
  os << "  \"algo\": \"" << algo << "\",\n";
  os << "  \"threads\": " << threads << ",\n";
  os << "  \"scheduling\": \"" << (dense ? "dense" : "active") << "\",\n";
  os << "  \"rounds\": " << net.rounds << ",\n";
  os << "  \"completed\": " << (net.completed ? "true" : "false") << ",\n";
  os << "  \"total_messages\": " << net.total_messages << ",\n";
  os << "  \"total_bits\": " << net.total_bits << ",\n";
  os << "  \"max_message_bits\": " << net.max_message_bits << ",\n";
  os << "  \"bandwidth_limit_bits\": " << net.bandwidth_limit_bits << ",\n";
  os << "  \"bandwidth_violations\": " << net.bandwidth_violations << ",\n";
  os << "  \"transcript_hash\": \"0x" << std::hex << net.transcript_hash
     << std::dec << "\",\n";
  os << "  \"agents_visited\": " << net.agents_visited << ",\n";
  os << "  \"agent_steps\": " << net.agent_steps << ",\n";
  os << "  \"slots_processed\": " << net.slots_processed << ",\n";
  os << "  \"sparse_account_passes\": " << net.sparse_account_passes << ",\n";
  os << "  \"dense_account_passes\": " << net.dense_account_passes << ",\n";
  os << "  \"cover_weight\": " << cert.cover_weight << ",\n";
  os << "  \"cover_size\": " << cover_size << ",\n";
  os << "  \"dual_total\": " << cert.dual_total << ",\n";
  os << "  \"certified_ratio\": " << cert.certified_ratio << ",\n";
  os << "  \"wall_ms\": " << wall_ms << "\n";
  os << "}\n";
  return os.str();
}

int run(const util::Cli& cli) {
  hg::Hypergraph g;
  const std::string path = cli.get("input", std::string("-"));
  if (path == "-") {
    g = hg::read_text(std::cin);
  } else {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "error: cannot open " << path << "\n";
      return 1;
    }
    g = hg::read_text(in);
  }
  const bool quiet = cli.has("quiet");
  if (!quiet) std::cerr << "instance: " << hg::compute_stats(g) << "\n";

  const std::string algo = cli.get("algo", std::string("mwhvc"));
  const double eps =
      cli.has("f-approx") ? core::f_approx_epsilon(g) : cli.get("eps", 0.5);
  const std::int64_t threads_arg = cli.get("threads", 1);
  if (threads_arg < 0) {
    std::cerr << "error: --threads must be >= 0\n";
    return 1;
  }
  const auto threads = static_cast<std::uint32_t>(threads_arg);
  const bool dense = cli.has("dense");
  const auto scheduling =
      dense ? congest::Scheduling::kDense : congest::Scheduling::kActive;

  std::vector<bool> cover;
  std::vector<double> duals(g.num_edges(), 0.0);
  std::uint32_t rounds = 0;
  congest::RunStats net;
  const auto wall_start = std::chrono::steady_clock::now();
  if (algo == "mwhvc") {
    core::MwhvcOptions o;
    o.eps = eps;
    o.appendix_c = cli.has("appendix-c");
    if (cli.has("alpha")) {
      o.alpha_mode = core::AlphaMode::kFixed;
      o.alpha_fixed = cli.get("alpha", 2.0);
    }
    o.engine.threads = threads;
    o.engine.scheduling = scheduling;
    const auto res = core::solve_mwhvc(g, o);
    cover = res.in_cover;
    duals = res.duals;
    rounds = res.net.rounds;
    net = res.net;
    if (!quiet) std::cerr << "network: " << res.net << "\n";
  } else if (algo == "kmw") {
    baselines::KmwOptions o;
    o.eps = eps;
    o.engine.threads = threads;
    o.engine.scheduling = scheduling;
    const auto res = baselines::solve_kmw(g, o);
    cover = res.in_cover;
    duals = res.duals;
    rounds = res.net.rounds;
    net = res.net;
  } else if (algo == "kvy") {
    baselines::KvyOptions o;
    o.eps = eps;
    o.engine.threads = threads;
    o.engine.scheduling = scheduling;
    const auto res = baselines::solve_kvy(g, o);
    cover = res.in_cover;
    duals = res.duals;
    rounds = res.net.rounds;
    net = res.net;
  } else if (algo == "greedy") {
    if (cli.has("threads") && threads != 1) {
      std::cerr << "note: --threads ignored by the sequential greedy solver\n";
    }
    cover = baselines::greedy_cover(g);
  } else if (algo == "local-ratio") {
    if (cli.has("threads") && threads != 1) {
      std::cerr << "note: --threads ignored by the sequential local-ratio "
                   "solver\n";
    }
    const auto res = baselines::local_ratio_cover(g);
    cover = res.in_cover;
    duals = res.duals;
  } else {
    std::cerr << "error: unknown --algo=" << algo << "\n";
    return 1;
  }

  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - wall_start)
          .count();

  const auto cert = verify::certify(g, cover, duals);
  if (!cert.cover_valid) {
    std::cerr << "VERIFICATION FAILED: " << cert.error << "\n";
    return 2;
  }
  bool json_on_stdout = false;
  if (cli.has("stats-json")) {
    std::size_t cover_size = 0;
    for (const bool b : cover) cover_size += b;
    const std::string json =
        stats_json(algo, net, threads, dense, wall_ms, cert, cover_size);
    const std::string path = cli.get("stats-json", std::string("-"));
    // A bare --stats-json (no =path) parses as "1": dump to stdout, and
    // suppress the human-readable block below so stdout stays parseable
    // (--cover-only still appends its vertex list).
    if (path == "-" || path == "1" || path.empty()) {
      std::cout << json;
      json_on_stdout = true;
    } else {
      std::ofstream out(path);
      if (!out) {
        std::cerr << "error: cannot write " << path << "\n";
        return 1;
      }
      out << json;
      if (!quiet) std::cerr << "stats written to " << path << "\n";
    }
  }
  if (cli.has("cover-only")) {
    for (hg::VertexId v = 0; v < g.num_vertices(); ++v) {
      if (cover[v]) std::cout << v << "\n";
    }
    return 0;
  }
  if (json_on_stdout) return 0;
  std::cout << "algorithm: " << algo << "\n";
  std::cout << "cover_weight: " << cert.cover_weight << "\n";
  std::cout << "cover_size: ";
  std::size_t size = 0;
  for (const bool b : cover) size += b;
  std::cout << size << "\n";
  if (cert.dual_total > 0) {
    std::cout << "dual_lower_bound: " << cert.dual_total << "\n";
    std::cout << "certified_ratio: " << cert.certified_ratio << "\n";
  }
  if (rounds > 0) std::cout << "rounds: " << rounds << "\n";
  std::cout << "cover:";
  for (hg::VertexId v = 0; v < g.num_vertices(); ++v) {
    if (cover[v]) std::cout << ' ' << v;
  }
  std::cout << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(util::Cli(argc, argv));
  } catch (const std::exception& ex) {
    std::cerr << "error: " << ex.what() << "\n";
    return 1;
  }
}
