// Command-line solver: read a hypergraph (file or stdin, format of
// hypergraph/io.hpp), run any algorithm from the solver registry, print
// the cover and its certificate, optionally machine-readably.
//
//   ./hypercover_cli --input=instance.hg [--algo=<name>] [--list-algos]
//       [--eps=0.5] [--appendix-c] [--alpha=<fixed>] [--threads=1]
//       [--dense] [--f-approx] [--max-rounds=N] [--quiet] [--cover-only]
//       [--stats-json[=path]]
//
// --list-algos prints one `name<TAB>kind<TAB>description` line per
// registered algorithm (the valid --algo values) and exits. Dispatch is
// entirely registry-driven: a newly registered algorithm is available
// here with no CLI change.
//
// --threads=N steps agents on N workers (0 = one per hardware thread);
// the run is bit-identical at any value. --dense forces the reference
// dense engine schedule (for A/B comparisons; also bit-identical).
// --stats-json dumps a machine-readable record (algorithm, RunStats,
// transcript hash, engine work counters, verification certificate, wall
// time) to stdout, or to a file when given a path — the scripted
// perf-tracking hook (scripts/bench_json.py --solve-json folds it into
// the perf trajectory).
//
// Exit code 0 on success (cover verified), 2 on verification failure,
// 1 on usage/input errors. The stats record is emitted even when
// verification fails (e.g. a --max-rounds-truncated run) so partial runs
// can be tracked; its certificate object reports the failure.

#include <cmath>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>

#include "api/registry.hpp"
#include "core/mwhvc.hpp"
#include "hypergraph/io.hpp"
#include "hypergraph/stats.hpp"
#include "util/cli.hpp"
#include "verify/verify.hpp"

namespace {

using namespace hypercover;

/// JSON has no infinity literal; certified_ratio is +inf when a valid
/// cover comes with an empty dual packing (greedy). Emit null there.
std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  std::ostringstream os;
  os << value;
  return os.str();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

/// Renders the solve record as a single JSON object. The transcript hash
/// is emitted as a hex string: JSON numbers lose 64-bit integer
/// precision.
std::string stats_json(const api::Solution& sol, std::uint32_t threads,
                       bool dense, std::size_t cover_size) {
  const congest::RunStats& net = sol.net;
  const verify::Certificate& cert = sol.certificate;
  std::ostringstream os;
  os << "{\n";
  os << "  \"algo\": \"" << json_escape(sol.algorithm) << "\",\n";
  os << "  \"threads\": " << threads << ",\n";
  os << "  \"scheduling\": \"" << (dense ? "dense" : "active") << "\",\n";
  os << "  \"rounds\": " << net.rounds << ",\n";
  os << "  \"completed\": " << (net.completed ? "true" : "false") << ",\n";
  os << "  \"total_messages\": " << net.total_messages << ",\n";
  os << "  \"total_bits\": " << net.total_bits << ",\n";
  os << "  \"max_message_bits\": " << net.max_message_bits << ",\n";
  os << "  \"bandwidth_limit_bits\": " << net.bandwidth_limit_bits << ",\n";
  os << "  \"bandwidth_violations\": " << net.bandwidth_violations << ",\n";
  os << "  \"transcript_hash\": \"0x" << std::hex << net.transcript_hash
     << std::dec << "\",\n";
  os << "  \"agents_visited\": " << net.agents_visited << ",\n";
  os << "  \"agent_steps\": " << net.agent_steps << ",\n";
  os << "  \"slots_processed\": " << net.slots_processed << ",\n";
  os << "  \"sparse_account_passes\": " << net.sparse_account_passes << ",\n";
  os << "  \"dense_account_passes\": " << net.dense_account_passes << ",\n";
  os << "  \"cover_weight\": " << cert.cover_weight << ",\n";
  os << "  \"cover_size\": " << cover_size << ",\n";
  os << "  \"dual_total\": " << cert.dual_total << ",\n";
  os << "  \"certified_ratio\": " << json_number(cert.certified_ratio)
     << ",\n";
  os << "  \"certificate\": {\n";
  os << "    \"valid\": " << (cert.valid() ? "true" : "false") << ",\n";
  os << "    \"cover_valid\": " << (cert.cover_valid ? "true" : "false")
     << ",\n";
  os << "    \"packing_feasible\": "
     << (cert.packing_feasible ? "true" : "false") << ",\n";
  os << "    \"error\": \"" << json_escape(cert.error) << "\"\n";
  os << "  },\n";
  os << "  \"wall_ms\": " << sol.wall_ms << "\n";
  os << "}\n";
  return os.str();
}

int run(const util::Cli& cli) {
  if (cli.has("list-algos")) {
    for (const api::Solver& s : api::solvers()) {
      std::cout << s.name << "\t"
                << (s.steppable ? "distributed" : "sequential") << "\t"
                << s.description << "\n";
    }
    return 0;
  }

  const std::string algo = cli.get("algo", std::string("mwhvc"));
  const api::Solver* solver = api::find_solver(algo);
  if (solver == nullptr) {
    std::cerr << "error: unknown --algo=" << algo << " (--list-algos prints"
              << " the registered names)\n";
    return 1;
  }

  hg::Hypergraph g;
  const std::string path = cli.get("input", std::string("-"));
  if (path == "-") {
    g = hg::read_text(std::cin);
  } else {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "error: cannot open " << path << "\n";
      return 1;
    }
    g = hg::read_text(in);
  }
  const bool quiet = cli.has("quiet");
  if (!quiet) std::cerr << "instance: " << hg::compute_stats(g) << "\n";

  constexpr std::int64_t kU32Max = std::numeric_limits<std::uint32_t>::max();
  const std::int64_t threads_arg = cli.get("threads", 1);
  if (threads_arg < 0 || threads_arg > kU32Max) {
    std::cerr << "error: --threads must be in [0, " << kU32Max << "]\n";
    return 1;
  }
  const auto threads = static_cast<std::uint32_t>(threads_arg);
  const bool dense = cli.has("dense");
  if (!solver->steppable && cli.has("threads") && threads != 1) {
    std::cerr << "note: --threads ignored by the sequential " << algo
              << " solver\n";
  }

  api::SolveRequest req;
  req.eps = cli.get("eps", 0.5);
  req.f_approx = cli.has("f-approx");
  req.engine.threads = threads;
  req.engine.scheduling =
      dense ? congest::Scheduling::kDense : congest::Scheduling::kActive;
  if (cli.has("max-rounds")) {
    const std::int64_t max_rounds =
        cli.get("max-rounds", std::int64_t{1} << 20);
    if (max_rounds <= 0 || max_rounds > kU32Max) {
      std::cerr << "error: --max-rounds must be in [1, " << kU32Max << "]\n";
      return 1;
    }
    req.engine.max_rounds = static_cast<std::uint32_t>(max_rounds);
  }
  req.mwhvc.appendix_c = cli.has("appendix-c");
  if (cli.has("alpha")) {
    req.mwhvc.alpha_mode = core::AlphaMode::kFixed;
    req.mwhvc.alpha_fixed = cli.get("alpha", 2.0);
  }

  const api::Solution sol = api::solve(algo, g, req);
  if (!quiet && solver->steppable) {
    std::cerr << "network: " << sol.net << "\n";
  }

  const verify::Certificate& cert = sol.certificate;
  std::size_t cover_size = 0;
  for (const bool b : sol.in_cover) cover_size += b;
  // The stats record is written even for a failed/partial run (the
  // certificate object in it says so); the exit code still reports the
  // verification failure below.
  bool json_on_stdout = false;
  if (cli.has("stats-json")) {
    const std::string json = stats_json(sol, threads, dense, cover_size);
    const std::string out_path = cli.get("stats-json", std::string("-"));
    // A bare --stats-json (no =path) parses as "1": dump to stdout, and
    // suppress the human-readable block below so stdout stays parseable
    // (--cover-only still appends its vertex list).
    if (out_path == "-" || out_path == "1" || out_path.empty()) {
      std::cout << json;
      json_on_stdout = true;
    } else {
      std::ofstream out(out_path);
      if (!out) {
        std::cerr << "error: cannot write " << out_path << "\n";
        return 1;
      }
      out << json;
      if (!quiet) std::cerr << "stats written to " << out_path << "\n";
    }
  }
  if (!cert.cover_valid) {
    std::cerr << "VERIFICATION FAILED: " << cert.error << "\n";
    return 2;
  }
  if (cli.has("cover-only")) {
    for (hg::VertexId v = 0; v < g.num_vertices(); ++v) {
      if (sol.in_cover[v]) std::cout << v << "\n";
    }
    return 0;
  }
  if (json_on_stdout) return 0;
  std::cout << "algorithm: " << sol.algorithm << "\n";
  std::cout << "cover_weight: " << cert.cover_weight << "\n";
  std::cout << "cover_size: " << cover_size << "\n";
  if (cert.dual_total > 0) {
    std::cout << "dual_lower_bound: " << cert.dual_total << "\n";
    std::cout << "certified_ratio: " << cert.certified_ratio << "\n";
  }
  if (sol.net.rounds > 0) std::cout << "rounds: " << sol.net.rounds << "\n";
  std::cout << "cover:";
  for (hg::VertexId v = 0; v < g.num_vertices(); ++v) {
    if (sol.in_cover[v]) std::cout << ' ' << v;
  }
  std::cout << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(util::Cli(argc, argv));
  } catch (const std::exception& ex) {
    std::cerr << "error: " << ex.what() << "\n";
    return 1;
  }
}
