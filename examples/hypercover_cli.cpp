// Command-line solver: read a hypergraph (file or stdin, format of
// hypergraph/io.hpp), run a chosen algorithm, print the cover and its
// certificate, optionally machine-readably.
//
//   ./hypercover_cli --input=instance.hg [--algo=mwhvc|kmw|kvy|greedy|
//       local-ratio] [--eps=0.5] [--appendix-c] [--alpha=<fixed>]
//       [--threads=1] [--f-approx] [--quiet] [--cover-only]
//
// --threads=N steps agents on N workers (0 = one per hardware thread);
// the run is bit-identical at any value.
//
// Exit code 0 on success (cover verified), 2 on verification failure,
// 1 on usage/input errors.

#include <fstream>
#include <iostream>

#include "baselines/kmw.hpp"
#include "baselines/kvy.hpp"
#include "baselines/sequential.hpp"
#include "core/mwhvc.hpp"
#include "hypergraph/io.hpp"
#include "hypergraph/stats.hpp"
#include "util/cli.hpp"
#include "verify/verify.hpp"

namespace {

using namespace hypercover;

int run(const util::Cli& cli) {
  hg::Hypergraph g;
  const std::string path = cli.get("input", std::string("-"));
  if (path == "-") {
    g = hg::read_text(std::cin);
  } else {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "error: cannot open " << path << "\n";
      return 1;
    }
    g = hg::read_text(in);
  }
  const bool quiet = cli.has("quiet");
  if (!quiet) std::cerr << "instance: " << hg::compute_stats(g) << "\n";

  const std::string algo = cli.get("algo", std::string("mwhvc"));
  const double eps =
      cli.has("f-approx") ? core::f_approx_epsilon(g) : cli.get("eps", 0.5);
  const std::int64_t threads_arg = cli.get("threads", 1);
  if (threads_arg < 0) {
    std::cerr << "error: --threads must be >= 0\n";
    return 1;
  }
  const auto threads = static_cast<std::uint32_t>(threads_arg);

  std::vector<bool> cover;
  std::vector<double> duals(g.num_edges(), 0.0);
  std::uint32_t rounds = 0;
  if (algo == "mwhvc") {
    core::MwhvcOptions o;
    o.eps = eps;
    o.appendix_c = cli.has("appendix-c");
    if (cli.has("alpha")) {
      o.alpha_mode = core::AlphaMode::kFixed;
      o.alpha_fixed = cli.get("alpha", 2.0);
    }
    o.engine.threads = threads;
    const auto res = core::solve_mwhvc(g, o);
    cover = res.in_cover;
    duals = res.duals;
    rounds = res.net.rounds;
    if (!quiet) std::cerr << "network: " << res.net << "\n";
  } else if (algo == "kmw") {
    baselines::KmwOptions o;
    o.eps = eps;
    o.engine.threads = threads;
    const auto res = baselines::solve_kmw(g, o);
    cover = res.in_cover;
    duals = res.duals;
    rounds = res.net.rounds;
  } else if (algo == "kvy") {
    baselines::KvyOptions o;
    o.eps = eps;
    o.engine.threads = threads;
    const auto res = baselines::solve_kvy(g, o);
    cover = res.in_cover;
    duals = res.duals;
    rounds = res.net.rounds;
  } else if (algo == "greedy") {
    if (cli.has("threads") && threads != 1) {
      std::cerr << "note: --threads ignored by the sequential greedy solver\n";
    }
    cover = baselines::greedy_cover(g);
  } else if (algo == "local-ratio") {
    if (cli.has("threads") && threads != 1) {
      std::cerr << "note: --threads ignored by the sequential local-ratio "
                   "solver\n";
    }
    const auto res = baselines::local_ratio_cover(g);
    cover = res.in_cover;
    duals = res.duals;
  } else {
    std::cerr << "error: unknown --algo=" << algo << "\n";
    return 1;
  }

  const auto cert = verify::certify(g, cover, duals);
  if (!cert.cover_valid) {
    std::cerr << "VERIFICATION FAILED: " << cert.error << "\n";
    return 2;
  }
  if (cli.has("cover-only")) {
    for (hg::VertexId v = 0; v < g.num_vertices(); ++v) {
      if (cover[v]) std::cout << v << "\n";
    }
    return 0;
  }
  std::cout << "algorithm: " << algo << "\n";
  std::cout << "cover_weight: " << cert.cover_weight << "\n";
  std::cout << "cover_size: ";
  std::size_t size = 0;
  for (const bool b : cover) size += b;
  std::cout << size << "\n";
  if (cert.dual_total > 0) {
    std::cout << "dual_lower_bound: " << cert.dual_total << "\n";
    std::cout << "certified_ratio: " << cert.certified_ratio << "\n";
  }
  if (rounds > 0) std::cout << "rounds: " << rounds << "\n";
  std::cout << "cover:";
  for (hg::VertexId v = 0; v < g.num_vertices(); ++v) {
    if (cover[v]) std::cout << ' ' << v;
  }
  std::cout << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(util::Cli(argc, argv));
  } catch (const std::exception& ex) {
    std::cerr << "error: " << ex.what() << "\n";
    return 1;
  }
}
