// Scenario: minimum-cost sensor placement as Weighted Set Cover.
//
//   ./sensor_cover [--sites=60] [--regions=400] [--freq=4] [--eps=0.25]
//                  [--seed=1]
//
// A utility must monitor `regions`; each candidate sensor site covers a
// subset of them, and each region is reachable from at most `freq` sites
// (the element frequency f of the set system). Rendered as MWHVC per §2:
// vertices = sites (weight = installation cost), hyperedges = regions.
// The distributed algorithm runs between the sites and the regions they
// can monitor — the paper's client/server network — and is compared with
// the centralized greedy heuristic.

#include <iostream>

#include "baselines/sequential.hpp"
#include "core/mwhvc.hpp"
#include "hypergraph/generators.hpp"
#include "hypergraph/stats.hpp"
#include "hypergraph/weights.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "verify/verify.hpp"

int main(int argc, char** argv) {
  using namespace hypercover;
  const util::Cli cli(argc, argv);
  const auto sites = static_cast<std::uint32_t>(cli.get("sites", 60));
  const auto regions = static_cast<std::uint32_t>(cli.get("regions", 400));
  const auto freq = static_cast<std::uint32_t>(cli.get("freq", 4));
  const double eps = cli.get("eps", 0.25);
  const auto seed = static_cast<std::uint64_t>(cli.get("seed", 1));

  const hg::Hypergraph g = hg::random_set_cover(
      sites, regions, freq, hg::uniform_weights(100), seed);
  std::cout << "set-cover instance: " << hg::compute_stats(g) << "\n\n";

  core::MwhvcOptions opts;
  opts.eps = eps;
  const auto distributed = core::solve_mwhvc(g, opts);
  const auto cert = verify::certify(g, distributed.in_cover, distributed.duals);
  if (!cert.valid()) {
    std::cerr << "verification failed: " << cert.error << "\n";
    return 1;
  }

  const auto greedy = baselines::greedy_cover(g);
  const hg::Weight greedy_weight = g.weight_of(greedy);
  if (!verify::is_cover(g, greedy)) {
    std::cerr << "greedy produced an invalid cover\n";
    return 1;
  }

  util::Table t({"method", "cost", "certified ratio <=", "rounds", "guarantee"});
  t.row()
      .add("distributed (f+eps)")
      .add(distributed.cover_weight)
      .add(cert.certified_ratio, 3)
      .add(std::uint64_t{distributed.net.rounds})
      .add(static_cast<double>(g.rank()) + eps, 2);
  t.row().add("greedy (centralized)").add(greedy_weight).add("-").add("-").add(
      "H_n");
  t.print(std::cout);

  std::cout << "\nselected sites: ";
  int shown = 0;
  for (hg::VertexId v = 0; v < g.num_vertices(); ++v) {
    if (distributed.in_cover[v] && shown++ < 20) std::cout << v << ' ';
  }
  if (shown > 20) std::cout << "... (" << shown << " total)";
  std::cout << "\nLP lower bound (dual): " << cert.dual_total
            << " -> cost is provably within " << cert.certified_ratio
            << "x of optimal.\n";
  return 0;
}
