// Quickstart: build a small weighted hypergraph, run the (f + eps)-
// approximate distributed cover algorithm, and inspect the result.
//
//   ./quickstart [--eps=0.5]
//
// The instance is the paper's setting in miniature: a 3-uniform hypergraph
// whose vertices are servers (weights = costs) and whose hyperedges are
// client requests that must each be served by at least one server.

#include <iostream>

#include "core/mwhvc.hpp"
#include "hypergraph/hypergraph.hpp"
#include "util/cli.hpp"
#include "verify/verify.hpp"

int main(int argc, char** argv) {
  using namespace hypercover;
  const util::Cli cli(argc, argv);
  const double eps = cli.get("eps", 0.5);

  // Servers with costs; requests each touch up to three servers (f = 3).
  hg::Builder builder;
  const hg::VertexId a = builder.add_vertex(3);   // cheap, well-connected
  const hg::VertexId b = builder.add_vertex(10);
  const hg::VertexId c = builder.add_vertex(4);
  const hg::VertexId d = builder.add_vertex(8);
  const hg::VertexId e = builder.add_vertex(1);   // very cheap leaf
  builder.add_edge({a, b, c});
  builder.add_edge({a, c, d});
  builder.add_edge({b, d});
  builder.add_edge({c, d, e});
  builder.add_edge({a, e});
  const hg::Hypergraph g = builder.build();

  core::MwhvcOptions opts;
  opts.eps = eps;
  const core::MwhvcResult res = core::solve_mwhvc(g, opts);

  std::cout << "instance: n=" << g.num_vertices() << " m=" << g.num_edges()
            << " f=" << g.rank() << " Delta=" << g.max_degree() << "\n";
  std::cout << "algorithm: beta=" << res.beta << " z=" << res.z
            << " alpha(global)=" << res.alpha_global << "\n";
  std::cout << "network:   " << res.net << "\n";
  std::cout << "cover:     { ";
  for (hg::VertexId v = 0; v < g.num_vertices(); ++v) {
    if (res.in_cover[v]) std::cout << v << ' ';
  }
  std::cout << "}  weight=" << res.cover_weight << "\n";

  // Every claim is re-checked by the verifier, never trusted.
  const auto cert = verify::certify(g, res.in_cover, res.duals);
  std::cout << "certificate: dual total=" << cert.dual_total
            << "  certified ratio <= " << cert.certified_ratio
            << "  (guarantee: " << g.rank() + eps << ")\n";
  if (!cert.valid()) {
    std::cerr << "VERIFICATION FAILED: " << cert.error << "\n";
    return 1;
  }
  std::cout << "verified: cover valid, dual packing feasible\n";
  return 0;
}
