#!/usr/bin/env python3
"""Determinism lint: reject nondeterminism sources in transcript-affecting code.

The repo's load-bearing invariant is that transcripts and solve digests
are bit-identical across thread counts, mailbox layouts, scheduling
modes, and ingestion paths. This lint makes the *sources* of
nondeterminism mechanically checkable instead of relying on reviewer
vigilance: it walks the C++ translation units under src/ and reports any

  * wall-clock or cycle-counter reads (std::chrono clocks, clock_gettime,
    __rdtsc, inline asm) -- rule `wall-clock` / `tsc-or-asm`,
  * randomness sources (std::random_device, rand/srand, the standard
    engines) -- rule `random`,
  * hash-ordered containers whose iteration order is
    implementation-defined (std::unordered_*) -- rule `unordered-container`,
  * pointer-identity ordering or hashing (uintptr_t round-trips,
    std::hash over pointer types) -- rule `pointer-identity`,
  * thread-identity reads (this_thread::get_id, pthread_self) -- rule
    `thread-id`,
  * observability state escaping the serving layer (obs:: uses or
    #include "obs/..." in files outside src/obs, src/server, src/router,
    src/api/batch*) -- rule `obs-boundary`. Spans and metrics carry
    wall-clock timestamps and random ids; if they reached the solver
    core they could leak into Solutions, transcripts, or digests and
    break the bit-identical contract, so the boundary is enforced by
    path, not by review.

Audited exceptions are allowlisted in the source with an annotation
comment carrying a real justification (>= {min_reason} characters):

    // [[hypercover::nondet_ok: wall_ms is reporting-only and excluded
    //    from the solve digest by the bit-identical contract.]]

The annotation suppresses findings on its own line and on the line
directly below it, so it works both trailing and as a lead-in comment.
An annotation with an empty or too-short reason is itself a finding
(`bad-annotation`): the allowlist must be an audit trail, not a mute
button.

Engines: the default engine strips comments, string and character
literals with a small lexer and applies the rules to what remains. With
--engine=clang the same rules run over a libclang token stream instead
(identical semantics, exact lexing); when clang.cindex is not importable
the script falls back to the regex engine with a note, so the lint works
in minimal containers and uses the real lexer where one is installed.

Exit codes: 0 clean, 1 findings, 2 usage/internal error.

Usage:
  scripts/determinism_lint.py                 # lint src/ (repo-relative)
  scripts/determinism_lint.py src/congest     # lint specific roots
  scripts/determinism_lint.py --self-test     # run the lint_corpus suite
"""

import argparse
import pathlib
import re
import sys

MIN_REASON = 10
__doc__ = __doc__.format(min_reason=MIN_REASON)

SOURCE_SUFFIXES = {".cpp", ".hpp", ".cc", ".h", ".hh", ".cxx"}

ANNOTATION_RE = re.compile(r"\[\[hypercover::nondet_ok:(?P<reason>[^\]]*)\]\]")

# (rule id, compiled pattern, skip preprocessor lines, message).
RULES = [
    (
        "wall-clock",
        re.compile(
            r"\b(?:steady_clock|system_clock|high_resolution_clock"
            r"|utc_clock|file_clock|clock_gettime|gettimeofday"
            r"|timespec_get|localtime|gmtime|strftime|mktime)\b"),
        False,
        "wall-clock reads are nondeterministic; timing belongs in "
        "congest/cycles.hpp or in reporting-only fields",
    ),
    (
        "tsc-or-asm",
        re.compile(r"__rdtscp?\b|__builtin_readcyclecounter|\basm\b|__asm__"),
        False,
        "cycle counters / inline asm are nondeterministic or "
        "platform-defined; the audited wrapper is congest/cycles.hpp",
    ),
    (
        "random",
        re.compile(
            r"\brandom_device\b|\bdefault_random_engine\b"
            r"|\bmt19937(?:_64)?\b|\bminstd_rand0?\b|\bknuth_b\b"
            r"|(?<![\w:.>])s?rand\s*\("),
        False,
        "unseeded/global randomness; use util::Xoshiro256StarStar with an "
        "explicit seed so every run is reproducible",
    ),
    (
        "unordered-container",
        re.compile(r"\bunordered_(?:map|set|multimap|multiset)\b"),
        True,  # the #include line is not the audit point; the use is
        "iteration order of hash containers is implementation-defined; "
        "prove the order never reaches a transcript/digest (annotate) or "
        "use an ordered/indexed container",
    ),
    (
        "pointer-identity",
        re.compile(r"std::hash<[^<>]*\*|\bu?intptr_t\b"),
        False,
        "pointer values differ across runs (ASLR, allocator state); "
        "never order, hash, or emit them",
    ),
    (
        "thread-id",
        re.compile(r"\bthis_thread::get_id\b|\bpthread_self\b|\bgettid\b"),
        False,
        "thread identity varies run to run; key work off deterministic "
        "shard/agent ids instead",
    ),
]

RULE_IDS = {rule_id for rule_id, _, _, _ in RULES} | {"bad-annotation",
                                                     "obs-boundary"}

# Path-aware rule: observability state stays in the serving layer. A
# file whose path contains one of these prefixes may use obs::; any
# other file may not. The include pattern is matched against the RAW
# line (the lexer blanks the quoted header name), gated on the line
# being a preprocessor directive; the code pattern runs on stripped
# lines like every other rule, so comments and strings stay inert.
OBS_ALLOWED_PREFIXES = ("src/obs/", "src/server/", "src/router/",
                        "src/api/batch")
OBS_CODE_RE = re.compile(r"\bobs::")
OBS_INCLUDE_RE = re.compile(r'#\s*include\s*"obs/')
OBS_MESSAGE = (
    "observability spans/metrics carry wall-clock time and random ids; "
    "obs:: must stay out of the deterministic core (allowed only under "
    + ", ".join(OBS_ALLOWED_PREFIXES) + ")")


def obs_allowed_path(path):
    s = str(path).replace("\\", "/")
    return any(prefix in s for prefix in OBS_ALLOWED_PREFIXES)


def strip_comments_and_literals(text):
    """Return text with comments, string and char literals blanked out.

    Newlines are preserved so line numbers survive. Handles //, /* */,
    "..." and '...' with escapes, and R"delim(...)delim" raw strings.
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2 if i + 1 < n else (n - i)
        elif c == "R" and nxt == '"':
            # Raw string literal: R"delim( ... )delim"
            m = re.match(r'R"([^()\\ \t\n]{0,16})\(', text[i:])
            if m is None:
                out.append(c)
                i += 1
                continue
            closer = ")" + m.group(1) + '"'
            end = text.find(closer, i + m.end())
            end = n if end < 0 else end + len(closer)
            out.extend("\n" for ch in text[i:end] if ch == "\n")
            i = end
        elif c in "\"'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                elif text[i] == "\n":  # unterminated; bail at line end
                    break
                i += 1
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def regex_engine_lines(text):
    """Default engine: lexer-stripped source, split into lines."""
    return strip_comments_and_literals(text).split("\n")


def clang_engine_lines(text, path):
    """libclang engine: rebuild per-line code text from the token stream,
    excluding comments and literals. Same downstream rule matching."""
    import clang.cindex as cindex  # caller guards the import

    index = cindex.Index.create()
    tu = index.parse(str(path), args=["-std=c++20", "-fsyntax-only"],
                     unsaved_files=[(str(path), text)],
                     options=cindex.TranslationUnit.PARSE_INCOMPLETE)
    lines = [""] * (text.count("\n") + 2)
    for tok in tu.get_tokens(extent=tu.cursor.extent):
        if tok.kind in (cindex.TokenKind.COMMENT, cindex.TokenKind.LITERAL):
            continue
        row = tok.location.line - 1
        if 0 <= row < len(lines):
            lines[row] += ("" if not lines[row] else " ") + tok.spelling
    return lines


def collect_annotations(text):
    """Line numbers (0-based) suppressed by a valid annotation, plus
    findings for annotations whose reason is too short to be an audit.
    The reason may wrap across comment lines ([^\\]]* matches newlines);
    every line the annotation touches plus the one below it is covered."""
    suppressed = set()
    bad = []
    for m in ANNOTATION_RE.finditer(text):
        reason = " ".join(m.group("reason").replace("//", " ").split())
        start_line = text.count("\n", 0, m.start())
        end_line = text.count("\n", 0, m.end())
        if len(reason) < MIN_REASON:
            bad.append((start_line, "bad-annotation",
                        "annotation reason is too short to be an audit "
                        f"(need >= {MIN_REASON} chars): '{reason}'"))
        else:
            suppressed.update(range(start_line, end_line + 2))
    return suppressed, bad


def scan_text(text, path="<memory>", engine="regex"):
    """Lint one translation unit. Returns [(line_idx, rule_id, message)]."""
    if engine == "clang":
        code_lines = clang_engine_lines(text, path)
    else:
        code_lines = regex_engine_lines(text)
    suppressed, findings = collect_annotations(text)
    obs_allowed = obs_allowed_path(path)
    raw_lines = text.split("\n")
    for idx, line in enumerate(code_lines):
        if not line:
            continue
        is_preprocessor = line.lstrip().startswith("#")
        for rule_id, pattern, skip_pp, message in RULES:
            if skip_pp and is_preprocessor:
                continue
            m = pattern.search(line)
            if m is None:
                continue
            if idx in suppressed:
                continue
            findings.append((idx, rule_id, f"'{m.group(0).strip()}' - {message}"))
        if not obs_allowed and idx not in suppressed:
            m = OBS_CODE_RE.search(line)
            if m is None and is_preprocessor and idx < len(raw_lines):
                m = OBS_INCLUDE_RE.search(raw_lines[idx])
            if m is not None:
                findings.append(
                    (idx, "obs-boundary",
                     f"'{m.group(0).strip()}' - {OBS_MESSAGE}"))
    findings.sort()
    return findings


def iter_source_files(roots):
    for root in roots:
        p = pathlib.Path(root)
        if p.is_file():
            yield p
        elif p.is_dir():
            yield from sorted(q for q in p.rglob("*")
                              if q.suffix in SOURCE_SUFFIXES and q.is_file())
        else:
            raise SystemExit(f"error: no such path: {root}")


def lint_paths(roots, engine):
    findings = []
    for path in iter_source_files(roots):
        text = path.read_text(encoding="utf-8", errors="replace")
        for idx, rule_id, message in scan_text(text, path, engine):
            findings.append((str(path), idx + 1, rule_id, message))
    return findings


# --- self-test over the committed snippet corpus ---------------------------

EXPECT_RE = re.compile(r"LINT-EXPECT:\s*(?P<rules>[a-z-]+(?:\s*,\s*[a-z-]+)*)")


def self_test(engine):
    """Run the lint over scripts/lint_corpus and require exact agreement
    with the LINT-EXPECT markers: every marked line must produce exactly
    the named findings, and nothing unmarked may produce any."""
    corpus = pathlib.Path(__file__).resolve().parent / "lint_corpus"
    files = sorted(corpus.glob("*.cpp")) + sorted(corpus.glob("*.hpp"))
    if not files:
        print(f"self-test: no corpus files under {corpus}", file=sys.stderr)
        return 2
    failures = []
    checked = 0
    for path in files:
        text = path.read_text(encoding="utf-8")
        expected = set()
        for idx, line in enumerate(text.split("\n")):
            m = EXPECT_RE.search(line)
            if m is None:
                continue
            for rule in re.split(r"\s*,\s*", m.group("rules")):
                if rule not in RULE_IDS:
                    failures.append(f"{path.name}:{idx + 1}: unknown rule "
                                    f"'{rule}' in LINT-EXPECT marker")
                    continue
                expected.add((idx, rule))
        actual = {(idx, rule) for idx, rule, _ in scan_text(text, path, engine)}
        for idx, rule in sorted(expected - actual):
            failures.append(f"{path.name}:{idx + 1}: expected a [{rule}] "
                            "finding, got none")
        for idx, rule in sorted(actual - expected):
            failures.append(f"{path.name}:{idx + 1}: unexpected [{rule}] "
                            "finding")
        checked += len(expected)
    # The stripping lexer itself: patterns inside comments/strings are
    # inert, and a valid annotation suppresses same-line and next-line.
    inline_cases = [
        ("// steady_clock in a comment\n", 0),
        ('const char* s = "random_device";\n', 0),
        ('auto r = R"(rand( unordered_map)";\n', 0),
        ("auto t = std::chrono::steady_clock::now();\n", 1),
        ("// [[hypercover::nondet_ok: audited: reporting-only value]]\n"
         "auto t = std::chrono::steady_clock::now();\n", 0),
        ("auto t = steady_clock::now();  "
         "// [[hypercover::nondet_ok: audited: reporting-only value]]\n", 0),
        ("// [[hypercover::nondet_ok: x]]\nauto t = steady_clock::now();\n",
         2),  # too-short reason: bad-annotation AND the unsuppressed find
    ]
    for text, want in inline_cases:
        got = scan_text(text, engine=engine)
        if len(got) != want:
            failures.append(f"inline case {text!r}: expected {want} "
                            f"finding(s), got {got}")
        checked += 1
    # obs-boundary is path-aware: the same line is a finding in the
    # solver core and clean in the serving layer.
    obs_cases = [
        ("auto& c = obs::metrics();\n", "src/congest/algo.cpp", 1),
        ("auto& c = obs::metrics();\n", "src/server/server.cpp", 0),
        ('#include "obs/obs.hpp"\n', "src/engine/engine.cpp", 1),
        ('#include "obs/obs.hpp"\n', "src/api/batch.cpp", 0),
        ("// obs::metrics() in a comment is inert\n",
         "src/engine/engine.cpp", 0),
        ('const char* s = "obs::metrics";\n', "src/engine/engine.cpp", 0),
        ("// [[hypercover::nondet_ok: audited: reporting-only hook, "
         "excluded from the digest]]\n"
         "auto& c = obs::metrics();\n", "src/engine/engine.cpp", 0),
    ]
    for text, path, want in obs_cases:
        got = scan_text(text, path=path, engine=engine)
        if len(got) != want:
            failures.append(f"obs case {text!r} at {path}: expected {want} "
                            f"finding(s), got {got}")
        checked += 1
    if failures:
        for f in failures:
            print(f"self-test FAIL: {f}", file=sys.stderr)
        return 1
    print(f"self-test OK: {len(files)} corpus files, {checked} checks, "
          f"engine={engine}", file=sys.stderr)
    return 0


def main():
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("roots", nargs="*", metavar="PATH",
                    help="files or directories to lint (default: src/ "
                         "relative to the repo root)")
    ap.add_argument("--engine", choices=("regex", "clang"), default="regex",
                    help="lexing engine; clang falls back to regex when "
                         "clang.cindex is not importable")
    ap.add_argument("--self-test", action="store_true",
                    help="run the lint_corpus snippet suite and exit")
    args = ap.parse_args()

    engine = args.engine
    if engine == "clang":
        try:
            import clang.cindex  # noqa: F401
        except ImportError:
            print("determinism_lint: clang.cindex not importable; "
                  "falling back to the regex engine", file=sys.stderr)
            engine = "regex"

    if args.self_test:
        return self_test(engine)

    roots = args.roots
    if not roots:
        repo = pathlib.Path(__file__).resolve().parent.parent
        roots = [str(repo / "src")]

    findings = lint_paths(roots, engine)
    for path, line, rule_id, message in findings:
        print(f"{path}:{line}: [{rule_id}] {message}")
    if findings:
        print(f"determinism_lint: {len(findings)} finding(s). Audited "
              "exceptions need a [[hypercover::nondet_ok: reason]] comment "
              "on or directly above the line.", file=sys.stderr)
        return 1
    print(f"determinism_lint: clean ({engine} engine)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
