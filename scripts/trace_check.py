#!/usr/bin/env python3
"""Validate a hypercover Chrome-trace JSON export (obs/trace_json.cpp).

Checks the schema and the span tree of a --trace-out file:

  * top level: an object with "traceEvents" (list); complete events are
    ph "X" with name/cat/ts/dur/pid/tid and an args object carrying
    trace_id / span_id / parent_span_id as 0x-prefixed 16-digit hex
    strings plus an integer "arg";
  * span ids are unique within the file;
  * every parent_span_id is either the null id (a root span) or the id
    of another span in the same trace;
  * a child's [ts, ts+dur] interval nests inside its parent's, within a
    small tolerance for the nanosecond->microsecond rounding (spans are
    recorded on one host clock, so containment must hold end to end);
  * pid is a known process layer (0 client, 1 router, 2 server).

Usage:
  trace_check.py trace.json [--require-layers=client,router,server,scheduler,engine]
      [--allow-partial]
  trace_check.py --self-test

--allow-partial accepts spans whose parent lives in another process's
recorder (the daemons' --trace-out drain exports are local views; only
a client-side export holds the whole stitched tree).

--require-layers asserts the trace touched each named layer, by span
name prefix: client -> client.*, router -> router.*, server -> server.*,
scheduler -> batch.*, engine -> engine.*. Exit 0 when the file
validates, 1 with one "trace_check: ..." line per problem otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys

NULL_ID = "0x0000000000000000"
KNOWN_PIDS = {0, 1, 2}

# --require-layers name -> span-name prefix.
LAYER_PREFIXES = {
    "client": "client.",
    "router": "router.",
    "server": "server.",
    "scheduler": "batch.",
    "engine": "engine.",
}

# ts/dur are microseconds printed with 3 decimals from integer
# nanoseconds, so each endpoint can be off by < 0.001 us; parent and
# child ends can each round the other way.
ROUNDING_EPS_US = 0.002


def is_hex_id(value) -> bool:
    if not isinstance(value, str) or len(value) != 18:
        return False
    if not value.startswith("0x"):
        return False
    try:
        int(value, 16)
    except ValueError:
        return False
    return True


def check_trace(doc, allow_partial: bool = False) -> list[str]:
    """Returns a list of problems; empty means the trace validates."""
    errors: list[str] = []
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        return ["top level must be an object with a traceEvents list"]

    spans = []
    for i, ev in enumerate(doc["traceEvents"]):
        if not isinstance(ev, dict):
            errors.append(f"event {i}: not an object")
            continue
        ph = ev.get("ph")
        if ph == "M":
            continue  # metadata (process_name) — free form
        if ph != "X":
            errors.append(f"event {i}: unknown ph {ph!r} (expected X or M)")
            continue
        for key in ("name", "cat", "ts", "dur", "pid", "tid", "args"):
            if key not in ev:
                errors.append(f"event {i}: missing {key!r}")
        if errors and errors[-1].startswith(f"event {i}:"):
            continue
        if not isinstance(ev["name"], str) or not ev["name"]:
            errors.append(f"event {i}: name must be a non-empty string")
            continue
        if not isinstance(ev["ts"], (int, float)) or not isinstance(
            ev["dur"], (int, float)
        ):
            errors.append(f"event {i} ({ev['name']}): ts/dur must be numbers")
            continue
        if ev["dur"] < 0:
            errors.append(f"event {i} ({ev['name']}): negative dur")
            continue
        if ev["pid"] not in KNOWN_PIDS:
            errors.append(
                f"event {i} ({ev['name']}): pid {ev['pid']!r} is not a "
                f"known process layer {sorted(KNOWN_PIDS)}"
            )
        args = ev["args"]
        if not isinstance(args, dict):
            errors.append(f"event {i} ({ev['name']}): args must be an object")
            continue
        bad_arg = False
        for key in ("trace_id", "span_id", "parent_span_id"):
            if not is_hex_id(args.get(key)):
                errors.append(
                    f"event {i} ({ev['name']}): args.{key} must be a "
                    "0x-prefixed 16-digit hex string"
                )
                bad_arg = True
        if not isinstance(args.get("arg"), int):
            errors.append(f"event {i} ({ev['name']}): args.arg must be an int")
            bad_arg = True
        if bad_arg:
            continue
        if args["span_id"] == NULL_ID:
            errors.append(f"event {i} ({ev['name']}): span_id is the null id")
            continue
        spans.append(ev)

    by_id = {}
    for ev in spans:
        sid = ev["args"]["span_id"]
        if sid in by_id:
            errors.append(
                f"span {ev['name']}: duplicate span_id {sid} "
                f"(also {by_id[sid]['name']})"
            )
        else:
            by_id[sid] = ev

    roots = 0
    for ev in spans:
        parent_id = ev["args"]["parent_span_id"]
        if parent_id == NULL_ID:
            roots += 1
            continue
        parent = by_id.get(parent_id)
        if parent is None:
            if allow_partial:
                roots += 1  # parent lives in another process's recorder
            else:
                errors.append(
                    f"span {ev['name']}: parent {parent_id} not in the trace"
                )
            continue
        if parent["args"]["trace_id"] != ev["args"]["trace_id"]:
            errors.append(
                f"span {ev['name']}: parent {parent['name']} belongs to a "
                "different trace"
            )
            continue
        if ev["ts"] + ROUNDING_EPS_US < parent["ts"] or (
            ev["ts"] + ev["dur"]
            > parent["ts"] + parent["dur"] + ROUNDING_EPS_US
        ):
            errors.append(
                f"span {ev['name']} [{ev['ts']}, {ev['ts'] + ev['dur']}] "
                f"escapes its parent {parent['name']} "
                f"[{parent['ts']}, {parent['ts'] + parent['dur']}]"
            )
    if spans and roots == 0:
        errors.append("no root span (every parent_span_id resolves inward)")
    return errors


def check_layers(doc, layers: list[str]) -> list[str]:
    names = {
        ev["name"]
        for ev in doc.get("traceEvents", [])
        if isinstance(ev, dict) and ev.get("ph") == "X"
    }
    errors = []
    for layer in layers:
        prefix = LAYER_PREFIXES.get(layer)
        if prefix is None:
            errors.append(
                f"unknown layer {layer!r} (choose from "
                f"{sorted(LAYER_PREFIXES)})"
            )
            continue
        if not any(n.startswith(prefix) for n in names):
            errors.append(f"no span from the {layer} layer ({prefix}*)")
    return errors


# --- self test --------------------------------------------------------------


def _span(name, sid, parent, ts, dur, pid=2, trace="0x" + "ab" * 8):
    return {
        "name": name,
        "cat": "hypercover",
        "ph": "X",
        "ts": ts,
        "dur": dur,
        "pid": pid,
        "tid": 7,
        "args": {
            "trace_id": trace,
            "span_id": sid,
            "parent_span_id": parent,
            "arg": 0,
        },
    }


def _sid(n: int) -> str:
    return f"0x{n:016x}"


def self_test() -> int:
    good = {
        "displayTimeUnit": "ms",
        "traceEvents": [
            {
                "ph": "M",
                "name": "process_name",
                "pid": 0,
                "tid": 0,
                "args": {"name": "client"},
            },
            _span("client.solve", _sid(1), NULL_ID, 100.0, 50.0, pid=0),
            _span("router.route", _sid(2), _sid(1), 101.0, 48.0, pid=1),
            _span("router.attempt", _sid(3), _sid(2), 102.0, 46.0, pid=1),
            _span("server.admit", _sid(4), _sid(3), 103.0, 1.0),
            _span("batch.slice", _sid(5), _sid(3), 105.0, 40.0),
            _span("engine.round", _sid(6), _sid(5), 106.0, 2.0),
        ],
    }
    cases = [
        ("good trace", good, 0, None),
        # Rounding tolerance: child end exceeds parent end by < eps.
        (
            "rounding tolerance",
            {
                "traceEvents": [
                    _span("a", _sid(1), NULL_ID, 100.0, 50.0),
                    _span("b", _sid(2), _sid(1), 99.999, 50.002),
                ]
            },
            0,
            None,
        ),
        (
            "not an object",
            [],
            1,
            "top level",
        ),
        (
            "duplicate span id",
            {
                "traceEvents": [
                    _span("a", _sid(1), NULL_ID, 0, 10),
                    _span("b", _sid(1), NULL_ID, 1, 2),
                ]
            },
            1,
            "duplicate span_id",
        ),
        (
            "dangling parent",
            {"traceEvents": [_span("a", _sid(1), _sid(9), 0, 10)]},
            1,
            "not in the trace",
        ),
        (
            "dangling parent allowed when partial",
            {
                "traceEvents": [_span("a", _sid(1), _sid(9), 0, 10)],
                "_allow_partial": True,
            },
            0,
            None,
        ),
        (
            "child escapes parent",
            {
                "traceEvents": [
                    _span("a", _sid(1), NULL_ID, 100.0, 10.0),
                    _span("b", _sid(2), _sid(1), 105.0, 10.0),
                ]
            },
            1,
            "escapes its parent",
        ),
        (
            "cross-trace parent",
            {
                "traceEvents": [
                    _span("a", _sid(1), NULL_ID, 0, 100),
                    _span("b", _sid(2), _sid(1), 1, 2, trace="0x" + "cd" * 8),
                ]
            },
            1,
            "different trace",
        ),
        (
            "no root",
            {
                "traceEvents": [
                    _span("a", _sid(1), _sid(2), 0, 100),
                    _span("b", _sid(2), _sid(1), 0, 100),
                ]
            },
            1,
            "no root span",
        ),
        (
            "bad hex id",
            {
                "traceEvents": [
                    {
                        **_span("a", _sid(1), NULL_ID, 0, 10),
                        "args": {
                            "trace_id": "42",
                            "span_id": _sid(1),
                            "parent_span_id": NULL_ID,
                            "arg": 0,
                        },
                    }
                ]
            },
            1,
            "hex string",
        ),
        (
            "unknown pid",
            {"traceEvents": [_span("a", _sid(1), NULL_ID, 0, 10, pid=9)]},
            1,
            "process layer",
        ),
        (
            "negative dur",
            {"traceEvents": [_span("a", _sid(1), NULL_ID, 0, -1)]},
            1,
            "negative dur",
        ),
    ]
    failures = 0
    for label, doc, want_rc, want_substr in cases:
        partial = isinstance(doc, dict) and doc.get("_allow_partial", False)
        errors = check_trace(doc, allow_partial=partial)
        rc = 1 if errors else 0
        if rc != want_rc:
            print(f"self-test FAIL [{label}]: rc {rc}, want {want_rc}: {errors}")
            failures += 1
        elif want_substr and not any(want_substr in e for e in errors):
            print(
                f"self-test FAIL [{label}]: no error mentions "
                f"{want_substr!r}: {errors}"
            )
            failures += 1

    # Layer coverage on the good trace.
    all_layers = ["client", "router", "server", "scheduler", "engine"]
    if check_layers(good, all_layers):
        print("self-test FAIL [layers]: good trace should cover all layers")
        failures += 1
    server_only = {"traceEvents": [_span("server.admit", _sid(1), NULL_ID, 0, 1)]}
    if not check_layers(server_only, ["engine"]):
        print("self-test FAIL [layers]: server-only trace claims engine spans")
        failures += 1
    if not check_layers(good, ["bogus"]):
        print("self-test FAIL [layers]: unknown layer name not rejected")
        failures += 1

    if failures:
        print(f"self-test: {failures} failures")
        return 1
    print(f"self-test: {len(cases)} trace cases + layer checks OK")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", nargs="?", help="Chrome-trace JSON file")
    parser.add_argument(
        "--require-layers",
        default="",
        help="comma list of layers that must appear "
        "(client,router,server,scheduler,engine)",
    )
    parser.add_argument(
        "--allow-partial",
        action="store_true",
        help="accept spans whose parent is in another process's export",
    )
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.trace:
        parser.error("a trace file (or --self-test) is required")
    try:
        with open(args.trace, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as ex:
        print(f"trace_check: cannot read {args.trace}: {ex}")
        return 1

    errors = check_trace(doc, allow_partial=args.allow_partial)
    layers = [l for l in args.require_layers.split(",") if l]
    errors += check_layers(doc, layers)
    for err in errors:
        print(f"trace_check: {err}")
    if errors:
        return 1
    n_spans = sum(
        1
        for ev in doc["traceEvents"]
        if isinstance(ev, dict) and ev.get("ph") == "X"
    )
    print(f"trace_check: {args.trace}: {n_spans} spans OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
