// Known-bad corpus: hash-ordered containers, pointer-identity use, and
// thread identity. The #include lines must NOT be flagged (the use site
// is the audit point, not the include). Not part of the build.
#include <cstdint>
#include <functional>
#include <thread>
#include <unordered_map>
#include <unordered_set>

struct Agent {};

void iteration_order_hazards() {
  std::unordered_map<int, int> by_id;        // LINT-EXPECT: unordered-container
  std::unordered_set<int> seen;              // LINT-EXPECT: unordered-container
  for (const auto& [k, v] : by_id) (void)v;
  (void)seen;
}

std::size_t pointer_identity(const Agent* a) {
  std::hash<const Agent*> h;                 // LINT-EXPECT: pointer-identity
  auto bits = reinterpret_cast<std::uintptr_t>(a);  // LINT-EXPECT: pointer-identity
  return h(a) ^ bits;
}

bool thread_identity() {
  return std::this_thread::get_id() == std::thread::id{};  // LINT-EXPECT: thread-id
}
