// Known-bad corpus for the determinism lint: every wall-clock source the
// lint must catch. LINT-EXPECT markers name the rule(s) the marked line
// must produce; the self-test fails on any missing or extra finding.
// This file is lint input, not part of the build.
#include <chrono>
#include <ctime>

void transcript_affecting() {
  auto a = std::chrono::steady_clock::now();            // LINT-EXPECT: wall-clock
  auto b = std::chrono::system_clock::now();            // LINT-EXPECT: wall-clock
  auto c = std::chrono::high_resolution_clock::now();   // LINT-EXPECT: wall-clock
  struct timespec ts;
  clock_gettime(0, &ts);                                // LINT-EXPECT: wall-clock
  timespec_get(&ts, 0);                                 // LINT-EXPECT: wall-clock
  (void)a; (void)b; (void)c;
}
