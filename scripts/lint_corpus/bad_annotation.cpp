// Known-bad corpus: an allowlist annotation whose reason is too short is
// itself a finding, and it does NOT suppress the line it covers — the
// allowlist is an audit trail, not a mute button. Not part of the build.
#include <chrono>

void short_reason() {
  // [[hypercover::nondet_ok: tbd]]  LINT-EXPECT: bad-annotation
  auto t = std::chrono::steady_clock::now();  // LINT-EXPECT: wall-clock
  (void)t;
}
