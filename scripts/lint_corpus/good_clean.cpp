// Known-good corpus: banned identifiers appearing only in comments,
// string/char literals, and raw strings are inert — the lexer strips
// them before the rules run. A clean file must produce zero findings.
// Not part of the build.
#include <map>
#include <string>

// steady_clock, rand(), unordered_map — all safely in a comment.
/* block comment: random_device __rdtsc this_thread::get_id */

std::string describe() {
  const std::string a = "uses steady_clock and unordered_set internally";
  const std::string b = R"(raw: srand(7); uintptr_t asm volatile)";
  const char c = '"';
  // An ordered map is fine, as is a word that merely contains "rand".
  std::map<int, int> ordered;
  int operand = 3;
  ordered[operand] = 1;
  return a + b + c;
}
