// Known-bad corpus: cycle counters, inline asm, and randomness sources.
// This file is lint input, not part of the build.
#include <cstdlib>
#include <random>

unsigned long long cycle_read() {
  return __rdtsc();                          // LINT-EXPECT: tsc-or-asm
}

unsigned long long counter_read() {
  unsigned long long v;
  asm volatile("mrs %0, cntvct_el0" : "=r"(v));  // LINT-EXPECT: tsc-or-asm
  return v;
}

int entropy() {
  std::random_device rd;                     // LINT-EXPECT: random
  std::mt19937 gen(rd());                    // LINT-EXPECT: random
  std::default_random_engine eng;            // LINT-EXPECT: random
  srand(42);                                 // LINT-EXPECT: random
  return rand() + static_cast<int>(gen()) + static_cast<int>(eng());  // LINT-EXPECT: random
}
