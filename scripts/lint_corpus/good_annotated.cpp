// Known-good corpus: every nondeterminism source here carries a valid
// audit annotation, trailing or as a lead-in comment (possibly wrapped),
// so the lint must report nothing. Not part of the build.
#include <chrono>
#include <unordered_map>

void audited() {
  // [[hypercover::nondet_ok: wall time is reporting-only; it never feeds
  //    the transcript hash or the solve digest.]]
  auto t = std::chrono::steady_clock::now();
  (void)t;

  std::unordered_map<int, int> index;  // [[hypercover::nondet_ok: lookup-only map; nothing ever iterates it, so its order cannot reach a transcript.]]
  index[1] = 2;
}
