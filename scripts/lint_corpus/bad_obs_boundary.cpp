// Known-bad corpus: observability state escaping the serving layer.
// This file's path is outside the allowed prefixes (src/obs, src/server,
// src/router, src/api/batch*), so both the include and the obs:: uses
// must fire. obs:: inside comments and string literals is inert, and a
// real audit annotation suppresses the rule like any other. This file is
// lint input, not part of the build.
#include "obs/metrics.hpp"  // LINT-EXPECT: obs-boundary

void core_leaks_metrics(int rounds) {
  obs::metrics().counter("hc_core_rounds_total").inc();  // LINT-EXPECT: obs-boundary
  auto span_id = obs::new_id();              // LINT-EXPECT: obs-boundary
  (void)span_id;
  (void)rounds;
}

void inert_mentions() {
  // A comment naming obs::recorder() is not a finding.
  const char* doc = "see obs::metrics() for the serving-layer registry";
  (void)doc;
}

// [[hypercover::nondet_ok: audited: test-only hook asserting the
//    registry is empty; the value never reaches a transcript.]]
bool audited_probe() { return obs::metrics().prometheus_text().empty(); }
