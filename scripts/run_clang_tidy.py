#!/usr/bin/env python3
"""Run clang-tidy (zero-warning policy) over every src/ translation unit.

Thin, dependency-free driver around the repo's .clang-tidy config:

  * reads compile_commands.json from the build directory (configure with
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON; the top-level CMakeLists already
    sets it),
  * filters the entries to files under --source-root (default: src/),
  * runs `clang-tidy -p <build> --quiet` on each in parallel and fails on
    ANY diagnostic (the config sets WarningsAsErrors: '*').

Availability gate: when no clang-tidy binary is on PATH (dev containers
that only ship gcc), the script prints a skip notice and exits 0 so the
`lint` CMake target stays runnable everywhere — pass --require (the CI
lint job does) to turn a missing binary into a hard failure instead.
$CLANG_TIDY or --clang-tidy selects a specific binary.

Exit codes: 0 clean/skipped, 1 findings, 2 usage error.
"""

import argparse
import concurrent.futures
import json
import os
import pathlib
import shutil
import subprocess
import sys


def find_clang_tidy(explicit):
    candidates = []
    if explicit:
        candidates.append(explicit)
    if os.environ.get("CLANG_TIDY"):
        candidates.append(os.environ["CLANG_TIDY"])
    candidates.append("clang-tidy")
    # Distro-versioned names, newest first.
    candidates.extend(f"clang-tidy-{v}" for v in range(21, 13, -1))
    for cand in candidates:
        path = shutil.which(cand)
        if path:
            return path
    return None


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--build-dir", default="build",
                    help="build tree holding compile_commands.json")
    ap.add_argument("--source-root", default="src",
                    help="only lint files under this root (default: src)")
    ap.add_argument("--clang-tidy", default=None,
                    help="clang-tidy binary (default: $CLANG_TIDY, then PATH)")
    ap.add_argument("--require", action="store_true",
                    help="fail (exit 2) when clang-tidy is not installed "
                         "instead of skipping")
    ap.add_argument("-j", "--jobs", type=int,
                    default=max(1, os.cpu_count() or 1))
    args = ap.parse_args()

    tidy = find_clang_tidy(args.clang_tidy)
    if tidy is None:
        msg = "run_clang_tidy: no clang-tidy binary found"
        if args.require:
            print(f"{msg} (--require set)", file=sys.stderr)
            return 2
        print(f"{msg}; skipping (install clang-tidy or set $CLANG_TIDY; "
              "CI runs this with --require)", file=sys.stderr)
        return 0

    build = pathlib.Path(args.build_dir)
    db_path = build / "compile_commands.json"
    if not db_path.is_file():
        print(f"run_clang_tidy: {db_path} not found — configure with "
              "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON first", file=sys.stderr)
        return 2

    source_root = pathlib.Path(args.source_root).resolve()
    files = sorted({
        str(pathlib.Path(entry["file"]).resolve())
        for entry in json.loads(db_path.read_text())
        if source_root in pathlib.Path(entry["file"]).resolve().parents
    })
    if not files:
        print(f"run_clang_tidy: no compile commands under {source_root}",
              file=sys.stderr)
        return 2

    print(f"run_clang_tidy: {tidy} over {len(files)} TUs "
          f"(-p {build}, -j {args.jobs})", file=sys.stderr)

    def one(path):
        proc = subprocess.run(
            [tidy, "-p", str(build), "--quiet", path],
            capture_output=True, text=True)
        return path, proc.returncode, proc.stdout, proc.stderr

    failed = 0
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        for path, code, out, err in pool.map(one, files):
            rel = os.path.relpath(path)
            if code != 0 or "warning:" in out or "error:" in out:
                failed += 1
                print(f"== {rel}: FINDINGS ==")
                sys.stdout.write(out)
                # clang-tidy puts "N warnings generated" chatter on
                # stderr; only surface it for failing TUs.
                sys.stderr.write(err)
            else:
                print(f"   {rel}: clean", file=sys.stderr)

    if failed:
        print(f"run_clang_tidy: findings in {failed}/{len(files)} TUs "
              "(zero-warning policy: fix or NOLINT(check) with a "
              "justification comment)", file=sys.stderr)
        return 1
    print(f"run_clang_tidy: clean ({len(files)} TUs)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
