#!/usr/bin/env python3
"""Fold engine benchmark results into the top-level BENCH_engine.json.

Runs the engine micro-benchmark binary with --benchmark_format=json and
appends a labelled run record to BENCH_engine.json, keeping earlier runs so
the file is a perf *trajectory*: the dense-scheduling points (benchmark
names ending in /0) exercise the pre-frontier reference engine and serve
as the baseline the activity-driven points (/1) must beat.

End-to-end solve records from `hypercover_cli --stats-json=<file>` can be
folded into the same run record with --solve-json (repeatable). The solve
schema carries the registry algorithm name ("algo") and the verification
certificate ("certificate": valid / cover_valid / packing_feasible /
error) alongside the RunStats fields.

Usage (or just `cmake --build build --target bench_json`):
  scripts/bench_json.py --bench build/bench_e11_engine_micro \
      [--bench build/bench_e12_batch_throughput ...] \
      [--out BENCH_engine.json] [--label "..."] \
      [--filter DigestGuard] [--min-time 0.05] [--keep 8] \
      [--solve-json stats.json ...]

--bench is repeatable; every binary's digest-guarded points are folded
into one run record (e11 = engine micro, e12 = batch-serving throughput).
"""

import argparse
import datetime
import json
import pathlib
import subprocess
import sys


def run_bench(bench, bench_filter, min_time):
    cmd = [
        bench,
        f"--benchmark_filter={bench_filter}",
        f"--benchmark_min_time={min_time}",
        "--benchmark_format=json",
    ]
    print(f"+ {' '.join(cmd)}", file=sys.stderr)
    proc = subprocess.run(cmd, capture_output=True, text=True, check=True)
    return json.loads(proc.stdout)


# hypercover_cli --stats-json fields folded into the run record. "algo"
# names the registry algorithm; "certificate" is the verification object
# (valid / cover_valid / packing_feasible / error).
SOLVE_FIELDS = (
    "algo", "threads", "scheduling", "layout", "rounds", "completed",
    "total_messages", "total_bits", "max_message_bits",
    "bandwidth_limit_bits", "bandwidth_violations", "transcript_hash",
    "solve_digest", "served", "cache_hit",
    "agents_visited", "agent_steps", "slots_processed",
    "sparse_account_passes", "dense_account_passes", "clear_slots",
    "sparse_clear_passes", "dense_clear_passes", "epoch_clear_passes",
    "step_cycles", "cycles_per_agent_step", "cover_weight",
    "cover_size", "dual_total", "certified_ratio", "certificate",
    "wall_ms",
)


def summarize_solve(path):
    """Validate and trim one hypercover_cli --stats-json record."""
    record = json.loads(pathlib.Path(path).read_text())
    for required in ("algo", "certificate"):
        if required not in record:
            raise SystemExit(
                f"error: {path} lacks the '{required}' field; is it a "
                "hypercover_cli --stats-json record?")
    if not record["certificate"].get("valid", False):
        print(f"warning: {path}: certificate is not valid "
              f"({record['certificate'].get('error', '')})", file=sys.stderr)
    return {key: record[key] for key in SOLVE_FIELDS if key in record}


def summarize(raw):
    """Keep the fields perf tracking needs; drop aggregate noise."""
    points = []
    for b in raw.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        point = {
            "name": b["name"],
            "real_time": b.get("real_time"),
            "cpu_time": b.get("cpu_time"),
            "time_unit": b.get("time_unit"),
            "iterations": b.get("iterations"),
        }
        for key, value in b.items():
            if key in ("items_per_second", "bytes_per_second", "active",
                       "rounds", "threads", "tail_rounds", "items_per_round",
                       "steps_per_round", "links", "agents_visited",
                       "agent_steps", "slots_processed", "sparse_passes",
                       "dense_passes", "batch", "concurrency", "p50_ms",
                       "p99_ms", "p999_ms", "offered_rps", "achieved_rps",
                       "retries", "backend_failures",
                       "queue_wait_p50_ms", "queue_wait_p99_ms",
                       "solve_hist_p50_ms", "solve_hist_p99_ms",
                       "router_hist_p50_ms", "router_hist_p99_ms",
                       "n", "edges", "incidences", "bytes",
                       "epoch_arena", "clear_slots", "step_cycles",
                       "cycles_per_step"):
                point[key] = value
        points.append(point)
    return points


def check_gates(run_record, prior_runs=(), out=sys.stderr):
    """Apply every perf gate to one run record; returns True when clean.

    Pure function of the run record (plus prior runs for the cycle-drift
    gate) so `--self-test` can drive it with synthetic records — the gate
    logic itself is what the self-test pins down.
    """
    ok = True
    num_cpus = run_record.get("host", {}).get("num_cpus") or 1

    # Gate: on any SparseTail pair present in this run, active must process
    # >= 5x fewer items per round than dense. A failure exits non-zero so
    # CI or a pre-merge hook can catch a frontier regression.
    tails = {}
    for p in run_record["benchmarks"]:
        # Names look like BM_SparseTailRounds.../100000/1/manual_time.
        parts = p["name"].split("/")
        if "SparseTail" in parts[0] and len(parts) >= 3 \
                and "items_per_round" in p:
            tails.setdefault((parts[0], parts[1]), {})[parts[2]] = \
                p["items_per_round"]
    for (base, instance), modes in sorted(tails.items()):
        dense, active = modes.get("0"), modes.get("1")
        if dense is None or active is None or active <= 0:
            continue
        ratio = dense / active
        status = "ok" if ratio >= 5.0 else "REGRESSION"
        print(f"{base}/{instance}: dense {dense:.0f} vs active {active:.0f} "
              f"items/round ({ratio:.1f}x) {status}", file=out)
        ok = ok and ratio >= 5.0

    # Gate: BatchScheduler throughput vs the sequential loop, in jobs/s.
    # Names look like BM_BatchThroughputDigestGuard/64/1/real_time; mode 0
    # is the loop, mode 1 the scheduler. Enforced (>= 1.5x at batch 64)
    # only when the scheduler actually had >= 2 workers — on a single-CPU
    # host the two modes tie by construction and the ratio is just
    # reported.
    batches = {}
    for p in run_record["benchmarks"]:
        parts = p["name"].split("/")
        if "BatchThroughput" in parts[0] and len(parts) >= 3 \
                and "items_per_second" in p:
            batches.setdefault(parts[1], {})[parts[2]] = p
    for batch, modes in sorted(batches.items(), key=lambda kv: int(kv[0])):
        loop, sched = modes.get("0"), modes.get("1")
        if loop is None or sched is None:
            continue
        ratio = sched["items_per_second"] / max(loop["items_per_second"], 1e-9)
        workers = sched.get("threads", 1)
        enforced = workers >= 2 and batch == "64"
        good = ratio >= 1.5 if enforced else True
        status = "ok" if good else "REGRESSION"
        if not enforced:
            status += " (report-only: single worker)" if workers < 2 else ""
        print(f"BatchThroughput/{batch}: loop {loop['items_per_second']:.0f} "
              f"vs scheduler {sched['items_per_second']:.0f} jobs/s "
              f"({ratio:.2f}x on {workers:.0f} workers) {status}",
              file=out)
        ok = ok and good

    # Gate: persistent solve server vs the fork-per-solve CLI loop, in
    # requests/s. Names look like BM_ServerThroughputDigestGuard/8/1/
    # real_time; parts[1] is the client concurrency, mode 0 the CLI loop,
    # mode 1 the server (result cache disabled). Enforced (>= 1.5x at
    # concurrency 8) only when the server pool had >= 2 workers — on a
    # single-CPU host the ratio is just reported.
    servers = {}
    for p in run_record["benchmarks"]:
        parts = p["name"].split("/")
        if "ServerThroughput" in parts[0] and len(parts) >= 3 \
                and "items_per_second" in p:
            servers.setdefault(parts[1], {})[parts[2]] = p
    for conc, modes in sorted(servers.items(), key=lambda kv: int(kv[0])):
        loop, served = modes.get("0"), modes.get("1")
        if loop is None or served is None:
            continue
        ratio = served["items_per_second"] / max(loop["items_per_second"],
                                                 1e-9)
        workers = served.get("threads", 1)
        enforced = workers >= 2 and conc == "8"
        good = ratio >= 1.5 if enforced else True
        status = "ok" if good else "REGRESSION"
        if not enforced and workers < 2:
            status += " (report-only: single worker)"
        print(f"ServerThroughput/{conc}: cli-loop "
              f"{loop['items_per_second']:.0f} vs server "
              f"{served['items_per_second']:.0f} req/s "
              f"({ratio:.2f}x, p99 {served.get('p99_ms', 0):.1f} ms) "
              f"{status}", file=out)
        ok = ok and good

    # Gate: hgb mmap ingestion vs text parse, in load wall time. Names
    # look like BM_ParseVsMapDigestGuard/120000/1/real_time; parts[1] is
    # the instance size n, mode 0 the text parse, mode 1 the mmap +
    # validate + adopt path. Enforced (>= 10x faster on the LARGEST
    # instance) on multi-CPU hosts; on a 1-CPU host the ratio is just
    # reported, consistent with the other gates.
    loads = {}
    for p in run_record["benchmarks"]:
        parts = p["name"].split("/")
        if "ParseVsMap" in parts[0] and len(parts) >= 3 \
                and p.get("real_time"):
            loads.setdefault(parts[1], {})[parts[2]] = p
    largest = max((int(n) for n in loads), default=None)
    for n, modes in sorted(loads.items(), key=lambda kv: int(kv[0])):
        parse, mapped = modes.get("0"), modes.get("1")
        if parse is None or mapped is None:
            continue
        ratio = parse["real_time"] / max(mapped["real_time"], 1e-9)
        enforced = int(n) == largest and num_cpus >= 2
        good = ratio >= 10.0 if enforced else True
        status = "ok" if good else "REGRESSION"
        if not enforced and num_cpus < 2:
            status += " (report-only: 1 CPU)"
        print(f"ParseVsMap/{n}: parse {parse['real_time']:.2f} vs mmap "
              f"{mapped['real_time']:.2f} {parse.get('time_unit', 'ms')} "
              f"({ratio:.1f}x) {status}", file=out)
        ok = ok and good

    # Gates: mailbox layout A/B (e15). Names look like
    # BM_EngineLayoutDigestGuard/100000/1/real_time; parts[1] is the
    # instance size n, mode 0 the legacy byte-presence layout, mode 1 the
    # epoch-arena layout. Three checks per pair:
    #   * wall time: the arena must solve the LARGEST end-to-end
    #     (non-Dense) instance >= 1.3x faster — enforced on multi-CPU
    #     hosts, report-only on 1 CPU like the other wall-clock gates;
    #   * clear_slots: the arena must write strictly fewer clearing slots
    #     — ALWAYS enforced, the counter is deterministic (epoch
    #     retirement writes zero slots, the legacy wipe writes them all);
    #   * cycles_per_step: the arena points must not regress > 15%
    #     against the previous recorded run's same-named point (multi-CPU
    #     hosts only; raw cycle counts are too noisy to gate on 1 CPU).
    layouts = {}
    for p in run_record["benchmarks"]:
        parts = p["name"].split("/")
        if "EngineLayout" in parts[0] and len(parts) >= 3 \
                and p.get("real_time"):
            layouts.setdefault((parts[0], parts[1]), {})[parts[2]] = p
    largest_e2e = max((int(n) for (base, n) in layouts
                       if "Dense" not in base), default=None)
    for (base, n), modes in sorted(layouts.items(),
                                   key=lambda kv: (kv[0][0], int(kv[0][1]))):
        legacy, arena = modes.get("0"), modes.get("1")
        if legacy is None or arena is None:
            continue
        ratio = legacy["real_time"] / max(arena["real_time"], 1e-9)
        enforced = "Dense" not in base and int(n) == largest_e2e \
            and num_cpus >= 2
        good = ratio >= 1.3 if enforced else True
        status = "ok" if good else "REGRESSION"
        if not enforced and num_cpus < 2:
            status += " (report-only: 1 CPU)"
        print(f"{base}/{n}: legacy {legacy['real_time']:.2f} vs arena "
              f"{arena['real_time']:.2f} {legacy.get('time_unit', 'ms')} "
              f"({ratio:.2f}x) {status}", file=out)
        ok = ok and good
        if "clear_slots" in legacy and "clear_slots" in arena:
            fewer = arena["clear_slots"] < legacy["clear_slots"]
            status = "ok" if fewer else "REGRESSION"
            print(f"{base}/{n}: clear_slots arena "
                  f"{arena['clear_slots']:.0f} vs legacy "
                  f"{legacy['clear_slots']:.0f} (strictly fewer) {status}",
                  file=out)
            ok = ok and fewer
    if layouts and num_cpus >= 2:
        prior = {}
        for old_run in prior_runs:
            for p in old_run.get("benchmarks", []):
                if "EngineLayout" in p.get("name", "") \
                        and p.get("cycles_per_step"):
                    prior[p["name"]] = p["cycles_per_step"]
        for p in run_record["benchmarks"]:
            parts = p["name"].split("/")
            if "EngineLayout" not in parts[0] or len(parts) < 3 \
                    or parts[2] != "1" or not p.get("cycles_per_step"):
                continue
            base = prior.get(p["name"])
            if not base:
                continue
            drift = p["cycles_per_step"] / base
            good = drift <= 1.15
            status = "ok" if good else "REGRESSION"
            print(f"{p['name']}: cycles/step {p['cycles_per_step']:.0f} vs "
                  f"prior {base:.0f} ({drift:.2f}x) {status}",
                  file=out)
            ok = ok and good

    # Gates: router fleet load (e16). The steady-state open-loop point
    # (BM_RouterLoadDigestGuard/<rps>) must keep its p99 under the 500 ms
    # serving SLO — enforced on multi-CPU hosts, report-only on 1 CPU
    # where the 3-backend fleet, the router, and the load workers all
    # timeshare one core. The chaos points (RouterChaosKill / Stall) must
    # report at least one failover retry — ALWAYS enforced: a chaos run
    # that never failed over exercised nothing.
    slo_p99_ms = 500.0
    for p in run_record["benchmarks"]:
        parts = p["name"].split("/")
        if "RouterLoad" in parts[0] and "p99_ms" in p:
            enforced = num_cpus >= 2
            good = p["p99_ms"] <= slo_p99_ms if enforced else True
            status = "ok" if good else "REGRESSION"
            if not enforced:
                status += " (report-only: 1 CPU)"
            print(f"{parts[0]}: p50 {p.get('p50_ms', 0):.1f} / p99 "
                  f"{p['p99_ms']:.1f} / p99.9 {p.get('p999_ms', 0):.1f} ms "
                  f"at {p.get('offered_rps', 0):.0f} rps offered "
                  f"(SLO p99 <= {slo_p99_ms:.0f} ms) {status}", file=out)
            ok = ok and good
        if "RouterChaos" in parts[0] and "retries" in p:
            good = p["retries"] >= 1
            status = "ok" if good else "REGRESSION"
            print(f"{parts[0]}: {p['retries']:.0f} failover retries, "
                  f"{p.get('backend_failures', 0):.0f} backend failures, "
                  f"p99 {p.get('p99_ms', 0):.1f} ms (>= 1 retry required) "
                  f"{status}", file=out)
            ok = ok and good

    # Gates: obs histogram fold (e13/e16). The in-process served and
    # router benches also report the SERVER-side view of each run, folded
    # from the process-global obs histograms (hc_batch_queue_wait_ms,
    # hc_server_solve_latency_ms, hc_router_solve_latency_ms) as log2
    # bucket upper bounds. Three checks per family:
    #   * presence: the counters must exist and be nonzero on every
    #     served / steady-router point — ALWAYS enforced, a missing or
    #     zero fold means the obs wiring came undone;
    #   * monotonicity: hist p50 <= hist p99 — ALWAYS enforced, bucket
    #     quantiles are monotone by construction;
    #   * wall-clock consistency: hist p99 <= 2x wall p99 + 1 ms (the
    #     log2 bucket bound over-estimates by at most 2x, and the
    #     server-side time is a subset of what the clients measured) —
    #     enforced on multi-CPU hosts, report-only on 1 CPU.
    def hist_fold(p, label, families):
        nonlocal ok
        wall = p.get("p99_ms", 0)
        for fam in families:
            p50 = p.get(f"{fam}_p50_ms")
            p99 = p.get(f"{fam}_p99_ms")
            if p50 is None or p99 is None:
                print(f"{label}: {fam} histogram fold missing — obs "
                      f"counters are unwired REGRESSION", file=out)
                ok = False
                continue
            mono = 0 < p50 <= p99
            within = p99 <= 2 * wall + 1
            enforced = num_cpus >= 2
            good = mono and (within or not enforced)
            status = "ok" if good else "REGRESSION"
            if good and not within:
                status += " (wall consistency report-only: 1 CPU)"
            print(f"{label}: {fam} hist p50 {p50:.0f} / p99 {p99:.0f} ms "
                  f"vs wall p99 {wall:.1f} ms {status}", file=out)
            ok = ok and good

    for p in run_record["benchmarks"]:
        parts = p["name"].split("/")
        if "ServerThroughput" in parts[0] and len(parts) >= 3 \
                and parts[2] == "1":
            hist_fold(p, f"{parts[0]}/{parts[1]} obs-fold",
                      ("queue_wait", "solve_hist"))
        if "RouterLoad" in parts[0] and "p99_ms" in p:
            hist_fold(p, f"{parts[0]} obs-fold", ("router_hist",))
    return ok


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--bench", action="append", default=[],
                    help="benchmark binary (repeatable; results are merged)")
    ap.add_argument("--out", default="BENCH_engine.json")
    ap.add_argument("--label", default="")
    ap.add_argument("--filter", default="DigestGuard")
    ap.add_argument("--min-time", default="0.05")
    ap.add_argument("--keep", type=int, default=8)
    ap.add_argument("--solve-json", action="append", default=[],
                    help="hypercover_cli --stats-json output to fold in "
                         "(repeatable)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the gate logic against synthetic run records "
                         "and exit; no benchmarks are executed")
    args = ap.parse_args()
    if args.self_test:
        return self_test()
    if not args.bench and not args.solve_json:
        ap.error("need --bench and/or --solve-json (or --self-test)")

    raw = {}
    for bench in args.bench:
        one = run_bench(bench, args.filter, args.min_time)
        if not raw:
            raw = one
        else:
            raw.setdefault("benchmarks", []).extend(
                one.get("benchmarks", []))

    out = pathlib.Path(args.out)
    doc = {"note": "", "runs": []}
    if out.exists():
        try:
            doc = json.loads(out.read_text())
        except json.JSONDecodeError:
            print(f"warning: {out} was not valid JSON; starting fresh",
                  file=sys.stderr)
    doc["note"] = (
        "Engine perf trajectory. Benchmarks named .../0 run the dense "
        "reference schedule (pre-frontier baseline); .../1 run the "
        "activity-driven engine. items_per_round on the SparseTail benches "
        "is the acceptance metric: active must stay >= 5x below dense. "
        "BatchThroughput benches compare the sequential solve loop (/0) "
        "with the shared-pool BatchScheduler (/1) in jobs per second; the "
        "scheduler must reach >= 1.5x at batch 64 on multi-core hosts. "
        "ServerThroughput benches compare the fork-per-solve CLI loop (/0) "
        "with the persistent solve server (/1, cache disabled) in requests "
        "per second at the given concurrency; the server must reach >= "
        "1.5x at concurrency 8 on multi-core hosts (report-only on 1 CPU). "
        "ParseVsMap benches compare text-parse ingestion (/0) with hgb "
        "mmap + validate + zero-copy adoption (/1), both digest-guarded; "
        "mmap must load the largest instance >= 10x faster (report-only "
        "on 1-CPU hosts). EngineLayout benches compare the legacy "
        "byte-presence mailbox layout (/0) with the epoch-arena SoA "
        "layout (/1), both digest-guarded; the arena must solve the "
        "largest instance >= 1.3x faster on multi-core hosts (report-only "
        "on 1 CPU), must write strictly fewer clear_slots (always "
        "enforced: epoch retirement clears zero slots), and its "
        "cycles_per_step must not regress > 15% against the previous "
        "recorded run. RouterLoad benches drive the sharding router over "
        "a forked 3-backend fleet with open-loop Poisson arrivals, every "
        "response digest-guarded; the steady-state p99 must stay under "
        "the 500 ms SLO on multi-core hosts (report-only on 1 CPU), and "
        "the RouterChaos points (one backend SIGKILLed or SIGSTOPped "
        "mid-run) must report at least one failover retry. The served and "
        "steady-router points also fold the process-global obs histograms "
        "(hc_batch_queue_wait_ms, hc_server_solve_latency_ms, "
        "hc_router_solve_latency_ms) into *_p50_ms / *_p99_ms counters as "
        "log2 bucket upper bounds; the fold must be present and monotone "
        "(always enforced) and its p99 must stay within 2x + 1 ms of the "
        "client-measured wall p99 (multi-core hosts; report-only on "
        "1 CPU).")

    context = raw.get("context", {})
    run_record = {
        "label": args.label,
        "date": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"),
        "host": {
            "num_cpus": context.get("num_cpus"),
            "mhz_per_cpu": context.get("mhz_per_cpu"),
            "library_build_type": context.get("library_build_type"),
        },
        "benchmarks": summarize(raw),
    }
    if args.solve_json:
        run_record["solves"] = [summarize_solve(p) for p in args.solve_json]
    doc.setdefault("runs", []).append(run_record)
    doc["runs"] = doc["runs"][-args.keep:]

    out.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {out} ({len(run_record['benchmarks'])} points, "
          f"{len(doc['runs'])} runs kept)", file=sys.stderr)

    ok = check_gates(run_record, prior_runs=doc["runs"][:-1])
    return 0 if ok else 1


def _record(points, num_cpus=2):
    return {"host": {"num_cpus": num_cpus}, "benchmarks": points}


def self_test():
    """Drive check_gates with synthetic run records, one pass and one
    failure per gate, so the thresholds themselves are under test. Gate
    chatter goes to a StringIO; only the verdict lines are printed."""
    import io

    def gates(points, num_cpus=2, prior_runs=()):
        return check_gates(_record(points, num_cpus), prior_runs,
                           out=io.StringIO())

    def tail(mode, ipr):
        return {"name": f"BM_SparseTailRounds/100000/{mode}/manual_time",
                "items_per_round": ipr}

    def batch(mode, jps, threads=4, size=64):
        return {"name": f"BM_BatchThroughputDigestGuard/{size}/{mode}",
                "items_per_second": jps, "threads": threads}

    def server(mode, rps, threads=4, conc=8, hist=True, hist_p50=8.0,
               hist_p99=32.0):
        p = {"name": f"BM_ServerThroughputDigestGuard/{conc}/{mode}",
             "items_per_second": rps, "threads": threads, "p99_ms": 40.0}
        if mode == 1 and hist:
            p["queue_wait_p50_ms"] = 2.0
            p["queue_wait_p99_ms"] = 16.0
            p["solve_hist_p50_ms"] = hist_p50
            p["solve_hist_p99_ms"] = hist_p99
        return p

    def load(mode, ms, n=120000):
        return {"name": f"BM_ParseVsMapDigestGuard/{n}/{mode}",
                "real_time": ms, "time_unit": "ms"}

    def layout(mode, ms, clear, cycles=None, n=100000):
        p = {"name": f"BM_EngineLayoutDigestGuard/{n}/{mode}",
             "real_time": ms, "time_unit": "ms", "clear_slots": clear}
        if cycles is not None:
            p["cycles_per_step"] = cycles
        return p

    def router(p99, rps=40.0, hist=True, hist_p50=None, hist_p99=None):
        p = {"name": f"BM_RouterLoadDigestGuard/{rps:.0f}/real_time",
             "p50_ms": p99 / 3, "p99_ms": p99, "p999_ms": p99 * 1.5,
             "offered_rps": rps}
        if hist:
            p["router_hist_p50_ms"] = \
                hist_p50 if hist_p50 is not None else max(1.0, p99 / 4)
            p["router_hist_p99_ms"] = \
                hist_p99 if hist_p99 is not None else max(1.0, p99)
        return p

    def chaos(retries, kind="Kill"):
        return {"name": f"BM_RouterChaos{kind}DigestGuard/real_time",
                "p99_ms": 100.0, "retries": retries,
                "backend_failures": retries}

    cases = [
        ("sparse_tail 10x passes", True,
         lambda: gates([tail(0, 1000.0), tail(1, 100.0)])),
        ("sparse_tail 2x fails", False,
         lambda: gates([tail(0, 1000.0), tail(1, 500.0)])),
        ("batch 2x at 64 passes", True,
         lambda: gates([batch(0, 100.0), batch(1, 200.0)])),
        ("batch 1.2x at 64 fails", False,
         lambda: gates([batch(0, 100.0), batch(1, 120.0)])),
        ("batch 1.2x report-only on one worker", True,
         lambda: gates([batch(0, 100.0), batch(1, 120.0, threads=1)])),
        ("batch 1.2x report-only at batch 8", True,
         lambda: gates([batch(0, 100.0, size=8), batch(1, 120.0, size=8)])),
        ("server 2x at conc 8 passes", True,
         lambda: gates([server(0, 50.0), server(1, 100.0)])),
        ("server 1.2x at conc 8 fails", False,
         lambda: gates([server(0, 50.0), server(1, 60.0)])),
        ("server 1.2x report-only on one worker", True,
         lambda: gates([server(0, 50.0), server(1, 60.0, threads=1)])),
        ("parse_vs_map 20x passes", True,
         lambda: gates([load(0, 200.0), load(1, 10.0)])),
        ("parse_vs_map 5x fails", False,
         lambda: gates([load(0, 200.0), load(1, 40.0)])),
        ("parse_vs_map 5x report-only on 1 cpu", True,
         lambda: gates([load(0, 200.0), load(1, 40.0)], num_cpus=1)),
        ("parse_vs_map enforces only the largest instance", True,
         lambda: gates([load(0, 200.0, n=1000), load(1, 40.0, n=1000),
                        load(0, 400.0), load(1, 20.0)])),
        ("layout 1.5x and fewer clears passes", True,
         lambda: gates([layout(0, 150.0, 5000.0), layout(1, 100.0, 0.0)])),
        ("layout 1.1x wall fails", False,
         lambda: gates([layout(0, 110.0, 5000.0), layout(1, 100.0, 0.0)])),
        ("layout 1.1x wall report-only on 1 cpu", True,
         lambda: gates([layout(0, 110.0, 5000.0), layout(1, 100.0, 0.0)],
                       num_cpus=1)),
        ("layout equal clear_slots fails even on 1 cpu", False,
         lambda: gates([layout(0, 150.0, 5000.0), layout(1, 100.0, 5000.0)],
                       num_cpus=1)),
        ("layout cycle drift 1.10x vs prior passes", True,
         lambda: gates(
             [layout(0, 150.0, 5000.0), layout(1, 100.0, 0.0, cycles=110.0)],
             prior_runs=[_record([layout(1, 100.0, 0.0, cycles=100.0)])])),
        ("layout cycle drift 1.20x vs prior fails", False,
         lambda: gates(
             [layout(0, 150.0, 5000.0), layout(1, 100.0, 0.0, cycles=120.0)],
             prior_runs=[_record([layout(1, 100.0, 0.0, cycles=100.0)])])),
        ("router p99 under SLO passes", True,
         lambda: gates([router(120.0)])),
        ("router p99 over SLO fails", False,
         lambda: gates([router(800.0)])),
        ("router p99 over SLO report-only on 1 cpu", True,
         lambda: gates([router(800.0)], num_cpus=1)),
        ("router chaos with retries passes", True,
         lambda: gates([chaos(3.0), chaos(2.0, kind="Stall")])),
        ("router chaos without a retry fails even on 1 cpu", False,
         lambda: gates([chaos(0.0)], num_cpus=1)),
        ("obs fold missing on a served point fails even on 1 cpu", False,
         lambda: gates([server(0, 50.0), server(1, 100.0, hist=False)],
                       num_cpus=1)),
        ("obs fold p50 above p99 fails even on 1 cpu", False,
         lambda: gates([server(0, 50.0), server(1, 100.0, hist_p50=64.0)],
                       num_cpus=1)),
        ("obs fold p99 inflated vs wall fails", False,
         lambda: gates([server(0, 50.0), server(1, 100.0, hist_p99=512.0)])),
        ("obs fold p99 inflated vs wall report-only on 1 cpu", True,
         lambda: gates([server(0, 50.0), server(1, 100.0, hist_p99=512.0)],
                       num_cpus=1)),
        ("router obs fold missing fails even on 1 cpu", False,
         lambda: gates([router(120.0, hist=False)], num_cpus=1)),
        ("router obs fold inflated vs wall fails", False,
         lambda: gates([router(120.0, hist_p99=1024.0)])),
        ("empty run record passes vacuously", True, lambda: gates([])),
    ]
    failures = 0
    for name, expect_clean, run in cases:
        got = run()
        verdict = "ok" if got == expect_clean else "SELF-TEST FAILURE"
        if got != expect_clean:
            failures += 1
        print(f"self-test: {name}: gate says "
              f"{'clean' if got else 'regression'} "
              f"(expected {'clean' if expect_clean else 'regression'}) "
              f"{verdict}", file=sys.stderr)
    print(f"self-test: {len(cases) - failures}/{len(cases)} cases passed",
          file=sys.stderr)
    return 0 if failures == 0 else 1


if __name__ == "__main__":
    sys.exit(main())
